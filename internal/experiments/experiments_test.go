package experiments

import "testing"

// smokeConfig keeps experiment smoke tests fast.
func smokeConfig() Config {
	return Config{BudgetB: 2_000, SymSizes: []int{10, 100}, Seed: 42}
}

func TestTableISmoke(t *testing.T) {
	skipIfShort(t)
	res, err := TableI(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Baselines) != 7*2 {
		t.Errorf("baseline cells = %d, want 14", len(res.Baselines))
	}
	if len(res.PBSE) != 2 {
		t.Errorf("pbSE cells = %d, want 2", len(res.PBSE))
	}
	for _, c := range res.Baselines {
		if c.Cov10B < c.CovB {
			t.Errorf("%s sym-%d: coverage decreased %d -> %d", c.Searcher, c.SymSize, c.CovB, c.Cov10B)
		}
	}
}

func TestTableIISmoke(t *testing.T) {
	skipIfShort(t)
	rows, err := TableII(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if len(r.RandomPath) != 2 || len(r.CovNew) != 2 {
			t.Errorf("%s: missing cells", r.Driver)
		}
		if r.PBSE.Cov10B == 0 {
			t.Errorf("%s: pbSE covered nothing", r.Driver)
		}
	}
}

func TestTableIIISmoke(t *testing.T) {
	skipIfShort(t)
	rows, err := TableIII(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Reproduce < 0 || r.Reproduce > len(r.Bugs) {
			t.Errorf("%s: reproduce count inconsistent", r.Driver)
		}
	}
}

func TestFig1Smoke(t *testing.T) {
	skipIfShort(t)
	rows, err := Fig1(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.ConcreteBlocks == 0 || len(r.ConcretePts) == 0 {
			t.Errorf("%s: empty concrete trace", r.Driver)
		}
		if r.Missed < 0 || r.Missed > r.ConcreteBlocks {
			t.Errorf("%s: missed count inconsistent", r.Driver)
		}
	}
}

func TestFig4Smoke(t *testing.T) {
	skipIfShort(t)
	r, err := Fig4(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.K1 < 1 || r.K2 < 1 {
		t.Errorf("bad k values: %+v", r)
	}
}

func TestFig5Smoke(t *testing.T) {
	skipIfShort(t)
	r, err := Fig5(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.NormalSeedPts) == 0 || len(r.BuggySeedPts) == 0 {
		t.Error("empty figure series")
	}
}

func TestSolverAblationsSmoke(t *testing.T) {
	skipIfShort(t)
	rows, err := SolverAblations(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("variants = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Stats.Queries == 0 {
			t.Errorf("%s: no queries recorded", r.Name)
		}
	}
}

// skipIfShort skips experiment smoke tests under -short: each one runs
// several full engine configurations and they dominate the suite's wall
// time.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment smoke tests skipped in -short mode")
	}
}
