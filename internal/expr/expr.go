// Package expr implements the bitvector expression language used by the
// symbolic executor and the constraint solver.
//
// Expressions are immutable, hash-consed DAG nodes created through a
// Context. The constructors perform aggressive local simplification
// (constant folding, algebraic identities), so the rest of the system can
// build expressions freely without worrying about blow-up from trivially
// reducible terms. Widths are 1..64 bits; width-1 expressions act as
// booleans.
package expr

import (
	"fmt"
	"strings"
)

// Kind identifies the operator of an expression node.
type Kind uint8

// Expression kinds. Width-1 results are produced by the comparison kinds.
const (
	Const Kind = iota + 1
	Read       // one symbolic byte: Array[Index], width 8

	Add
	Sub
	Mul
	UDiv
	SDiv
	URem
	SRem

	And
	Or
	Xor
	Not // bitwise complement
	Shl
	LShr
	AShr

	Eq  // width 1
	Ult // width 1
	Ule // width 1
	Slt // width 1
	Sle // width 1

	ZExt
	SExt
	Trunc // keep low Width bits

	Concat // hi ++ lo; width = hi.Width + lo.Width
	ITE    // cond (width 1), then, else
)

var kindNames = map[Kind]string{
	Const: "const", Read: "read",
	Add: "add", Sub: "sub", Mul: "mul", UDiv: "udiv", SDiv: "sdiv",
	URem: "urem", SRem: "srem",
	And: "and", Or: "or", Xor: "xor", Not: "not",
	Shl: "shl", LShr: "lshr", AShr: "ashr",
	Eq: "eq", Ult: "ult", Ule: "ule", Slt: "slt", Sle: "sle",
	ZExt: "zext", SExt: "sext", Trunc: "trunc",
	Concat: "concat", ITE: "ite",
}

// String returns the lower-case mnemonic for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Array names a source of symbolic bytes (e.g. the symbolic input file).
// Arrays are compared by identity.
type Array struct {
	Name string
	Size int // number of bytes

	// maskSeed salts the ReadMask bit positions of this array's bytes.
	// It is a pure function of Name, so two processes (or two solver
	// workers) building the same program assign identical bits — the
	// property that keeps hash-sliced constraint sets, and the shared
	// cache keys derived from them, stable across workers.
	maskSeed uint64
}

// NewArray returns a fresh symbolic array.
func NewArray(name string, size int) *Array {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return &Array{Name: name, Size: size, maskSeed: h}
}

// ReadMask is a fixed-width hash bitmask summarising an expression's
// symbolic byte reads: each (array, byte index) pair maps to one of 1024
// bits in W. Two expressions with disjoint masks provably share no
// symbolic bytes; overlapping masks may be hash collisions. Consumers
// (the solver's union slicer) only use the mask to over-approximate
// connectivity, so collisions cost precision, never soundness. Coarse is
// the OR of all of W's words — a one-word prefilter that rejects most
// disjoint pairs without touching the full mask.
type ReadMask struct {
	W      [ReadMaskWords]uint64
	Coarse uint64
}

// ReadMaskWords is the mask width in 64-bit words (1024 bits total).
const ReadMaskWords = 16

// ReadMask returns the node's read bitmask, or nil when the expression
// reads no symbolic bytes (constants and constant folds). The pointer is
// owned by the DAG and must not be modified. Masks are built eagerly at
// hash-cons time by OR-ing the children's masks, so the amortised cost
// is O(1) per node; nodes whose reads equal a single child's share that
// child's mask object.
func (e *Expr) ReadMask() *ReadMask { return e.rmask }

// Expr is one immutable node of the expression DAG. Nodes are created only
// through a Context, which hash-conses them: two structurally identical
// expressions built in the same Context are pointer-equal.
type Expr struct {
	kind  Kind
	width uint8
	val   uint64 // Const: value; Read: byte index
	arr   *Array // Read only
	kids  [3]*Expr
	nkids uint8
	id    uint64    // creation order within the Context; stable sort key
	rmask *ReadMask // hash bitmask of symbolic byte reads; nil when none
}

// Kind returns the node operator.
func (e *Expr) Kind() Kind { return e.kind }

// Width returns the bit width of the value the node produces.
func (e *Expr) Width() uint { return uint(e.width) }

// IsConst reports whether the node is a constant.
func (e *Expr) IsConst() bool { return e.kind == Const }

// IsBool reports whether the node has width 1.
func (e *Expr) IsBool() bool { return e.width == 1 }

// Value returns the constant value; it panics when the node is not const.
func (e *Expr) Value() uint64 {
	if e.kind != Const {
		panic("expr: Value on non-const")
	}
	return e.val
}

// IsTrue reports whether the node is the width-1 constant 1.
func (e *Expr) IsTrue() bool { return e.kind == Const && e.width == 1 && e.val == 1 }

// IsFalse reports whether the node is the width-1 constant 0.
func (e *Expr) IsFalse() bool { return e.kind == Const && e.width == 1 && e.val == 0 }

// Array returns the symbolic array of a Read node (nil otherwise).
func (e *Expr) Array() *Array {
	if e.kind != Read {
		return nil
	}
	return e.arr
}

// ReadIndex returns the byte index of a Read node.
func (e *Expr) ReadIndex() int {
	if e.kind != Read {
		panic("expr: ReadIndex on non-read")
	}
	return int(e.val)
}

// NumKids returns the number of child expressions.
func (e *Expr) NumKids() int { return int(e.nkids) }

// Kid returns the i-th child expression.
func (e *Expr) Kid(i int) *Expr { return e.kids[i] }

// ID returns the creation-order id of this node within its Context.
func (e *Expr) ID() uint64 { return e.id }

// String renders the expression as an s-expression, for debugging and tests.
func (e *Expr) String() string {
	var b strings.Builder
	e.format(&b)
	return b.String()
}

func (e *Expr) format(b *strings.Builder) {
	switch e.kind {
	case Const:
		fmt.Fprintf(b, "%d:w%d", e.val, e.width)
	case Read:
		fmt.Fprintf(b, "%s[%d]", e.arr.Name, e.val)
	default:
		b.WriteByte('(')
		b.WriteString(e.kind.String())
		if e.kind == ZExt || e.kind == SExt || e.kind == Trunc {
			fmt.Fprintf(b, ":w%d", e.width)
		}
		for i := 0; i < int(e.nkids); i++ {
			b.WriteByte(' ')
			e.kids[i].format(b)
		}
		b.WriteByte(')')
	}
}

// mask returns the all-ones mask for a width in bits.
func mask(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << w) - 1
}

// signBit reports whether v's sign bit is set at width w.
func signBit(v uint64, w uint) bool { return v>>(w-1)&1 == 1 }

// sext sign-extends the w-bit value v to 64 bits.
func sext(v uint64, w uint) uint64 {
	if w >= 64 || !signBit(v, w) {
		return v
	}
	return v | ^mask(w)
}

// key is the hash-cons identity of a node.
type key struct {
	kind       Kind
	width      uint8
	val        uint64
	arr        *Array
	k0, k1, k2 *Expr
}

// Context creates and interns expressions. A Context is not safe for
// concurrent use; each executor run owns one.
type Context struct {
	intern map[key]*Expr
	nextID uint64

	// small cache of common constants
	true1, false1 *Expr
}

// NewContext returns an empty expression context.
func NewContext() *Context {
	c := &Context{intern: make(map[key]*Expr, 1024)}
	c.false1 = c.Const(0, 1)
	c.true1 = c.Const(1, 1)
	return c
}

// NumNodes returns the number of distinct nodes interned so far.
func (c *Context) NumNodes() int { return len(c.intern) }

func (c *Context) mk(k key) *Expr {
	if e, ok := c.intern[k]; ok {
		return e
	}
	e := &Expr{kind: k.kind, width: k.width, val: k.val, arr: k.arr, id: c.nextID}
	c.nextID++
	switch {
	case k.k2 != nil:
		e.kids = [3]*Expr{k.k0, k.k1, k.k2}
		e.nkids = 3
	case k.k1 != nil:
		e.kids = [3]*Expr{k.k0, k.k1, nil}
		e.nkids = 2
	case k.k0 != nil:
		e.kids = [3]*Expr{k.k0, nil, nil}
		e.nkids = 1
	}
	if k.kind == Read {
		m := new(ReadMask)
		bit := (k.arr.maskSeed + k.val*0x9e3779b97f4a7c15) & (ReadMaskWords*64 - 1)
		w := uint64(1) << (bit & 63)
		m.W[bit>>6] = w
		m.Coarse = w
		e.rmask = m
	} else {
		// OR the kids' masks; when the union equals one child's mask
		// pointer (the common chain case: one symbolic operand), share
		// that object instead of allocating.
		var m *ReadMask
		owned := false
		for i := 0; i < int(e.nkids); i++ {
			km := e.kids[i].rmask
			if km == nil || km == m {
				continue
			}
			if m == nil {
				m = km
				continue
			}
			if !owned {
				nm := new(ReadMask)
				*nm = *m
				m = nm
				owned = true
			}
			for j, w := range km.W {
				m.W[j] |= w
			}
			m.Coarse |= km.Coarse
		}
		e.rmask = m
	}
	c.intern[k] = e
	return e
}

// Const returns the constant v truncated to width w.
func (c *Context) Const(v uint64, w uint) *Expr {
	if w == 0 || w > 64 {
		panic(fmt.Sprintf("expr: bad width %d", w))
	}
	return c.mk(key{kind: Const, width: uint8(w), val: v & mask(w)})
}

// True returns the width-1 constant 1.
func (c *Context) True() *Expr { return c.true1 }

// False returns the width-1 constant 0.
func (c *Context) False() *Expr { return c.false1 }

// Bool returns the width-1 constant for b.
func (c *Context) Bool(b bool) *Expr {
	if b {
		return c.true1
	}
	return c.false1
}

// ByteAt returns the symbolic byte arr[idx] (width 8).
func (c *Context) ByteAt(arr *Array, idx int) *Expr {
	if idx < 0 || idx >= arr.Size {
		panic(fmt.Sprintf("expr: read %s[%d] out of range (size %d)", arr.Name, idx, arr.Size))
	}
	return c.mk(key{kind: Read, width: 8, val: uint64(idx), arr: arr})
}

// ReadLE returns the little-endian concatenation of n bytes starting at idx.
func (c *Context) ReadLE(arr *Array, idx, n int) *Expr {
	e := c.ByteAt(arr, idx)
	for i := 1; i < n; i++ {
		e = c.Concat(c.ByteAt(arr, idx+i), e)
	}
	return e
}

func checkSameWidth(op Kind, a, b *Expr) {
	if a.width != b.width {
		panic(fmt.Sprintf("expr: %s width mismatch %d vs %d", op, a.width, b.width))
	}
}

// binary builds a (possibly folded) binary node.
func (c *Context) binary(k Kind, w uint, a, b *Expr) *Expr {
	return c.mk(key{kind: k, width: uint8(w), k0: a, k1: b})
}

// Add returns a+b (modular).
func (c *Context) Add(a, b *Expr) *Expr {
	checkSameWidth(Add, a, b)
	w := a.Width()
	if a.IsConst() && b.IsConst() {
		return c.Const(a.val+b.val, w)
	}
	// canonicalise: constant on the left
	if b.IsConst() {
		a, b = b, a
	}
	if a.IsConst() && a.val == 0 {
		return b
	}
	// (c1 + (c2 + x)) -> (c1+c2) + x
	if a.IsConst() && b.kind == Add && b.kids[0].IsConst() {
		return c.Add(c.Const(a.val+b.kids[0].val, w), b.kids[1])
	}
	if !a.IsConst() && a.id > b.id { // commutative canonical order
		a, b = b, a
	}
	return c.binary(Add, w, a, b)
}

// Sub returns a-b (modular).
func (c *Context) Sub(a, b *Expr) *Expr {
	checkSameWidth(Sub, a, b)
	w := a.Width()
	if a.IsConst() && b.IsConst() {
		return c.Const(a.val-b.val, w)
	}
	if b.IsConst() && b.val == 0 {
		return a
	}
	if a == b {
		return c.Const(0, w)
	}
	// a - c  ->  (-c) + a
	if b.IsConst() {
		return c.Add(c.Const(-b.val, w), a)
	}
	return c.binary(Sub, w, a, b)
}

// Mul returns a*b (modular).
func (c *Context) Mul(a, b *Expr) *Expr {
	checkSameWidth(Mul, a, b)
	w := a.Width()
	if a.IsConst() && b.IsConst() {
		return c.Const(a.val*b.val, w)
	}
	if b.IsConst() {
		a, b = b, a
	}
	if a.IsConst() {
		switch a.val {
		case 0:
			return c.Const(0, w)
		case 1:
			return b
		}
	}
	if !a.IsConst() && a.id > b.id {
		a, b = b, a
	}
	return c.binary(Mul, w, a, b)
}

// UDiv returns the unsigned quotient a/b; division by zero yields all-ones
// (the usual SMT-LIB bitvector convention).
func (c *Context) UDiv(a, b *Expr) *Expr {
	checkSameWidth(UDiv, a, b)
	w := a.Width()
	if a.IsConst() && b.IsConst() {
		if b.val == 0 {
			return c.Const(mask(w), w)
		}
		return c.Const(a.val/b.val, w)
	}
	if b.IsConst() && b.val == 1 {
		return a
	}
	return c.binary(UDiv, w, a, b)
}

// SDiv returns the signed quotient; division by zero yields all-ones.
func (c *Context) SDiv(a, b *Expr) *Expr {
	checkSameWidth(SDiv, a, b)
	w := a.Width()
	if a.IsConst() && b.IsConst() {
		if b.val == 0 {
			return c.Const(mask(w), w)
		}
		q := int64(sext(a.val, w)) / int64(sext(b.val, w))
		return c.Const(uint64(q), w)
	}
	if b.IsConst() && b.val == 1 {
		return a
	}
	return c.binary(SDiv, w, a, b)
}

// URem returns the unsigned remainder; x%0 = x (SMT-LIB convention).
func (c *Context) URem(a, b *Expr) *Expr {
	checkSameWidth(URem, a, b)
	w := a.Width()
	if a.IsConst() && b.IsConst() {
		if b.val == 0 {
			return a
		}
		return c.Const(a.val%b.val, w)
	}
	if b.IsConst() && b.val == 1 {
		return c.Const(0, w)
	}
	// x % 2^k  ->  x & (2^k - 1)
	if b.IsConst() && b.val != 0 && b.val&(b.val-1) == 0 {
		return c.And(a, c.Const(b.val-1, w))
	}
	return c.binary(URem, w, a, b)
}

// SRem returns the signed remainder (sign follows the dividend); x%0 = x.
func (c *Context) SRem(a, b *Expr) *Expr {
	checkSameWidth(SRem, a, b)
	w := a.Width()
	if a.IsConst() && b.IsConst() {
		if b.val == 0 {
			return a
		}
		r := int64(sext(a.val, w)) % int64(sext(b.val, w))
		return c.Const(uint64(r), w)
	}
	return c.binary(SRem, w, a, b)
}

// And returns the bitwise conjunction.
func (c *Context) And(a, b *Expr) *Expr {
	checkSameWidth(And, a, b)
	w := a.Width()
	if a.IsConst() && b.IsConst() {
		return c.Const(a.val&b.val, w)
	}
	if b.IsConst() {
		a, b = b, a
	}
	if a.IsConst() {
		if a.val == 0 {
			return c.Const(0, w)
		}
		if a.val == mask(w) {
			return b
		}
	}
	if a == b {
		return a
	}
	if !a.IsConst() && a.id > b.id {
		a, b = b, a
	}
	return c.binary(And, w, a, b)
}

// Or returns the bitwise disjunction.
func (c *Context) Or(a, b *Expr) *Expr {
	checkSameWidth(Or, a, b)
	w := a.Width()
	if a.IsConst() && b.IsConst() {
		return c.Const(a.val|b.val, w)
	}
	if b.IsConst() {
		a, b = b, a
	}
	if a.IsConst() {
		if a.val == 0 {
			return b
		}
		if a.val == mask(w) {
			return c.Const(mask(w), w)
		}
	}
	if a == b {
		return a
	}
	if !a.IsConst() && a.id > b.id {
		a, b = b, a
	}
	return c.binary(Or, w, a, b)
}

// Xor returns the bitwise exclusive-or.
func (c *Context) Xor(a, b *Expr) *Expr {
	checkSameWidth(Xor, a, b)
	w := a.Width()
	if a.IsConst() && b.IsConst() {
		return c.Const(a.val^b.val, w)
	}
	if b.IsConst() {
		a, b = b, a
	}
	if a.IsConst() && a.val == 0 {
		return b
	}
	// (c1 ^ (c2 ^ x)) -> (c1^c2) ^ x
	if a.IsConst() && b.kind == Xor && b.kids[0].IsConst() {
		return c.Xor(c.Const(a.val^b.kids[0].val, w), b.kids[1])
	}
	if a == b {
		return c.Const(0, w)
	}
	if !a.IsConst() && a.id > b.id {
		a, b = b, a
	}
	return c.binary(Xor, w, a, b)
}

// NotE returns the bitwise complement of a.
func (c *Context) NotE(a *Expr) *Expr {
	w := a.Width()
	if a.IsConst() {
		return c.Const(^a.val, w)
	}
	if a.kind == Not {
		return a.kids[0]
	}
	return c.mk(key{kind: Not, width: uint8(w), k0: a})
}

// NotB returns the logical negation of a width-1 expression.
func (c *Context) NotB(a *Expr) *Expr {
	if !a.IsBool() {
		panic("expr: NotB on non-bool")
	}
	return c.Xor(a, c.true1)
}

// Shl returns a << b; shifts ≥ width yield 0.
func (c *Context) Shl(a, b *Expr) *Expr {
	checkSameWidth(Shl, a, b)
	w := a.Width()
	if a.IsConst() && b.IsConst() {
		if b.val >= uint64(w) {
			return c.Const(0, w)
		}
		return c.Const(a.val<<b.val, w)
	}
	if b.IsConst() && b.val == 0 {
		return a
	}
	return c.binary(Shl, w, a, b)
}

// LShr returns the logical right shift; shifts ≥ width yield 0.
func (c *Context) LShr(a, b *Expr) *Expr {
	checkSameWidth(LShr, a, b)
	w := a.Width()
	if a.IsConst() && b.IsConst() {
		if b.val >= uint64(w) {
			return c.Const(0, w)
		}
		return c.Const((a.val&mask(w))>>b.val, w)
	}
	if b.IsConst() && b.val == 0 {
		return a
	}
	return c.binary(LShr, w, a, b)
}

// AShr returns the arithmetic right shift; shifts ≥ width replicate the
// sign bit.
func (c *Context) AShr(a, b *Expr) *Expr {
	checkSameWidth(AShr, a, b)
	w := a.Width()
	if a.IsConst() && b.IsConst() {
		sh := b.val
		if sh >= uint64(w) {
			sh = uint64(w) - 1
		}
		return c.Const(uint64(int64(sext(a.val, w))>>sh), w)
	}
	if b.IsConst() && b.val == 0 {
		return a
	}
	return c.binary(AShr, w, a, b)
}

// EqE returns a == b as a width-1 expression.
func (c *Context) EqE(a, b *Expr) *Expr {
	checkSameWidth(Eq, a, b)
	if a == b {
		return c.true1
	}
	if a.IsConst() && b.IsConst() {
		return c.Bool(a.val == b.val)
	}
	if b.IsConst() {
		a, b = b, a
	}
	// (eq c1 (add c2 x)) -> (eq (c1-c2) x)
	if a.IsConst() && b.kind == Add && b.kids[0].IsConst() {
		return c.EqE(c.Const(a.val-b.kids[0].val, a.Width()), b.kids[1])
	}
	// booleans: (eq true x) -> x ; (eq false x) -> !x
	if a.IsBool() && a.IsConst() {
		if a.val == 1 {
			return b
		}
		return c.NotB(b)
	}
	// (eq c (zext x)) with c outside x's range -> false
	if a.IsConst() && (b.kind == ZExt) && a.val > mask(b.kids[0].Width()) {
		return c.false1
	}
	if !a.IsConst() && a.id > b.id {
		a, b = b, a
	}
	return c.mk(key{kind: Eq, width: 1, k0: a, k1: b})
}

// NeE returns a != b as a width-1 expression.
func (c *Context) NeE(a, b *Expr) *Expr { return c.NotB(c.EqE(a, b)) }

// UltE returns the unsigned comparison a < b.
func (c *Context) UltE(a, b *Expr) *Expr {
	checkSameWidth(Ult, a, b)
	if a == b {
		return c.false1
	}
	if a.IsConst() && b.IsConst() {
		return c.Bool(a.val < b.val)
	}
	if b.IsConst() && b.val == 0 {
		return c.false1 // nothing is < 0 unsigned
	}
	if a.IsConst() && a.val == mask(a.Width()) {
		return c.false1 // max is < nothing
	}
	return c.mk(key{kind: Ult, width: 1, k0: a, k1: b})
}

// UleE returns the unsigned comparison a <= b.
func (c *Context) UleE(a, b *Expr) *Expr {
	checkSameWidth(Ule, a, b)
	if a == b {
		return c.true1
	}
	if a.IsConst() && b.IsConst() {
		return c.Bool(a.val <= b.val)
	}
	if a.IsConst() && a.val == 0 {
		return c.true1
	}
	if b.IsConst() && b.val == mask(b.Width()) {
		return c.true1
	}
	return c.mk(key{kind: Ule, width: 1, k0: a, k1: b})
}

// SltE returns the signed comparison a < b.
func (c *Context) SltE(a, b *Expr) *Expr {
	checkSameWidth(Slt, a, b)
	if a == b {
		return c.false1
	}
	if a.IsConst() && b.IsConst() {
		w := a.Width()
		return c.Bool(int64(sext(a.val, w)) < int64(sext(b.val, w)))
	}
	return c.mk(key{kind: Slt, width: 1, k0: a, k1: b})
}

// SleE returns the signed comparison a <= b.
func (c *Context) SleE(a, b *Expr) *Expr {
	checkSameWidth(Sle, a, b)
	if a == b {
		return c.true1
	}
	if a.IsConst() && b.IsConst() {
		w := a.Width()
		return c.Bool(int64(sext(a.val, w)) <= int64(sext(b.val, w)))
	}
	return c.mk(key{kind: Sle, width: 1, k0: a, k1: b})
}

// UgtE returns a > b unsigned.
func (c *Context) UgtE(a, b *Expr) *Expr { return c.UltE(b, a) }

// UgeE returns a >= b unsigned.
func (c *Context) UgeE(a, b *Expr) *Expr { return c.UleE(b, a) }

// SgtE returns a > b signed.
func (c *Context) SgtE(a, b *Expr) *Expr { return c.SltE(b, a) }

// SgeE returns a >= b signed.
func (c *Context) SgeE(a, b *Expr) *Expr { return c.SleE(b, a) }

// ZExtE zero-extends a to width w.
func (c *Context) ZExtE(a *Expr, w uint) *Expr {
	if w < a.Width() {
		panic("expr: zext to narrower width")
	}
	if w == a.Width() {
		return a
	}
	if a.IsConst() {
		return c.Const(a.val, w)
	}
	if a.kind == ZExt {
		return c.ZExtE(a.kids[0], w)
	}
	return c.mk(key{kind: ZExt, width: uint8(w), k0: a})
}

// SExtE sign-extends a to width w.
func (c *Context) SExtE(a *Expr, w uint) *Expr {
	if w < a.Width() {
		panic("expr: sext to narrower width")
	}
	if w == a.Width() {
		return a
	}
	if a.IsConst() {
		return c.Const(sext(a.val, a.Width()), w)
	}
	return c.mk(key{kind: SExt, width: uint8(w), k0: a})
}

// TruncE keeps the low w bits of a.
func (c *Context) TruncE(a *Expr, w uint) *Expr {
	if w > a.Width() {
		panic("expr: trunc to wider width")
	}
	if w == a.Width() {
		return a
	}
	if a.IsConst() {
		return c.Const(a.val, w)
	}
	// trunc(zext/sext x) back to x's width (or narrower than x)
	if (a.kind == ZExt || a.kind == SExt) && w <= a.kids[0].Width() {
		return c.TruncE(a.kids[0], w)
	}
	// trunc(zext x) to w >= x's width -> zext x to w
	if a.kind == ZExt && w >= a.kids[0].Width() {
		return c.ZExtE(a.kids[0], w)
	}
	// trunc(concat hi lo) to w <= lo.width -> trunc lo
	if a.kind == Concat && w <= a.kids[1].Width() {
		return c.TruncE(a.kids[1], w)
	}
	return c.mk(key{kind: Trunc, width: uint8(w), k0: a})
}

// Concat returns hi ++ lo, a value of width hi.Width()+lo.Width().
func (c *Context) Concat(hi, lo *Expr) *Expr {
	w := hi.Width() + lo.Width()
	if w > 64 {
		panic("expr: concat wider than 64 bits")
	}
	if hi.IsConst() && lo.IsConst() {
		return c.Const(hi.val<<lo.Width()|lo.val, w)
	}
	// (concat 0 x) -> zext x
	if hi.IsConst() && hi.val == 0 {
		return c.ZExtE(lo, w)
	}
	return c.mk(key{kind: Concat, width: uint8(w), k0: hi, k1: lo})
}

// ITEe returns if cond then a else b.
func (c *Context) ITEe(cond, a, b *Expr) *Expr {
	if !cond.IsBool() {
		panic("expr: ITE condition must be width 1")
	}
	checkSameWidth(ITE, a, b)
	if cond.IsConst() {
		if cond.val == 1 {
			return a
		}
		return b
	}
	if a == b {
		return a
	}
	// boolean ITE special cases
	if a.IsBool() {
		if a.IsTrue() && b.IsFalse() {
			return cond
		}
		if a.IsFalse() && b.IsTrue() {
			return c.NotB(cond)
		}
	}
	return c.mk(key{kind: ITE, width: a.width, k0: cond, k1: a, k2: b})
}

// AndB returns the logical conjunction of width-1 expressions.
func (c *Context) AndB(a, b *Expr) *Expr {
	if !a.IsBool() || !b.IsBool() {
		panic("expr: AndB on non-bool")
	}
	return c.And(a, b)
}

// OrB returns the logical disjunction of width-1 expressions.
func (c *Context) OrB(a, b *Expr) *Expr {
	if !a.IsBool() || !b.IsBool() {
		panic("expr: OrB on non-bool")
	}
	return c.Or(a, b)
}
