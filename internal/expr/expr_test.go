package expr

import (
	"math/rand"
	"testing"
)

func TestConstFolding(t *testing.T) {
	c := NewContext()
	tests := []struct {
		name string
		give *Expr
		want uint64
	}{
		{"add", c.Add(c.Const(3, 32), c.Const(4, 32)), 7},
		{"add wrap", c.Add(c.Const(0xffffffff, 32), c.Const(1, 32)), 0},
		{"sub", c.Sub(c.Const(3, 32), c.Const(5, 32)), 0xfffffffe},
		{"mul", c.Mul(c.Const(6, 16), c.Const(7, 16)), 42},
		{"udiv", c.UDiv(c.Const(42, 8), c.Const(5, 8)), 8},
		{"udiv by zero", c.UDiv(c.Const(42, 8), c.Const(0, 8)), 0xff},
		{"sdiv", c.SDiv(c.Const(0xf8, 8), c.Const(2, 8)), 0xfc}, // -8/2 = -4
		{"urem", c.URem(c.Const(42, 8), c.Const(5, 8)), 2},
		{"urem by zero", c.URem(c.Const(42, 8), c.Const(0, 8)), 42},
		{"srem", c.SRem(c.Const(0xf9, 8), c.Const(4, 8)), 0xfd}, // -7%4 = -3
		{"and", c.And(c.Const(0b1100, 8), c.Const(0b1010, 8)), 0b1000},
		{"or", c.Or(c.Const(0b1100, 8), c.Const(0b1010, 8)), 0b1110},
		{"xor", c.Xor(c.Const(0b1100, 8), c.Const(0b1010, 8)), 0b0110},
		{"not", c.NotE(c.Const(0b1100, 8)), 0b11110011},
		{"shl", c.Shl(c.Const(1, 16), c.Const(4, 16)), 16},
		{"shl overshift", c.Shl(c.Const(1, 16), c.Const(16, 16)), 0},
		{"lshr", c.LShr(c.Const(0x80, 8), c.Const(3, 8)), 0x10},
		{"ashr", c.AShr(c.Const(0x80, 8), c.Const(3, 8)), 0xf0},
		{"ashr overshift", c.AShr(c.Const(0x80, 8), c.Const(100, 8)), 0xff},
		{"eq true", c.EqE(c.Const(5, 32), c.Const(5, 32)), 1},
		{"eq false", c.EqE(c.Const(5, 32), c.Const(6, 32)), 0},
		{"ult", c.UltE(c.Const(5, 32), c.Const(6, 32)), 1},
		{"slt neg", c.SltE(c.Const(0xff, 8), c.Const(0, 8)), 1}, // -1 < 0
		{"sle", c.SleE(c.Const(7, 8), c.Const(7, 8)), 1},
		{"zext", c.ZExtE(c.Const(0xff, 8), 32), 0xff},
		{"sext", c.SExtE(c.Const(0xff, 8), 32), 0xffffffff},
		{"trunc", c.TruncE(c.Const(0x1234, 32), 8), 0x34},
		{"concat", c.Concat(c.Const(0xab, 8), c.Const(0xcd, 8)), 0xabcd},
		{"ite true", c.ITEe(c.True(), c.Const(1, 8), c.Const(2, 8)), 1},
		{"ite false", c.ITEe(c.False(), c.Const(1, 8), c.Const(2, 8)), 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !tt.give.IsConst() {
				t.Fatalf("expected constant, got %v", tt.give)
			}
			if got := tt.give.Value(); got != tt.want {
				t.Errorf("got %#x, want %#x", got, tt.want)
			}
		})
	}
}

func TestAlgebraicIdentities(t *testing.T) {
	c := NewContext()
	arr := NewArray("in", 16)
	x := c.ZExtE(c.ByteAt(arr, 0), 32)
	y := c.ZExtE(c.ByteAt(arr, 1), 32)
	zero := c.Const(0, 32)
	one := c.Const(1, 32)

	tests := []struct {
		name       string
		give, want *Expr
	}{
		{"x+0", c.Add(x, zero), x},
		{"0+x", c.Add(zero, x), x},
		{"x-0", c.Sub(x, zero), x},
		{"x-x", c.Sub(x, x), zero},
		{"x*1", c.Mul(x, one), x},
		{"x*0", c.Mul(x, zero), zero},
		{"x/1", c.UDiv(x, one), x},
		{"x%1", c.URem(x, one), zero},
		{"x&x", c.And(x, x), x},
		{"x&0", c.And(x, zero), zero},
		{"x&-1", c.And(x, c.Const(0xffffffff, 32)), x},
		{"x|0", c.Or(x, zero), x},
		{"x|x", c.Or(x, x), x},
		{"x^x", c.Xor(x, x), zero},
		{"x^0", c.Xor(x, zero), x},
		{"~~x", c.NotE(c.NotE(x)), x},
		{"x<<0", c.Shl(x, zero), x},
		{"x==x", c.EqE(x, x), c.True()},
		{"x<x", c.UltE(x, x), c.False()},
		{"x<0u", c.UltE(x, zero), c.False()},
		{"0<=x u", c.UleE(zero, x), c.True()},
		{"commute add", c.Add(x, y), c.Add(y, x)},
		{"assoc const add", c.Add(c.Const(2, 32), c.Add(c.Const(3, 32), x)), c.Add(c.Const(5, 32), x)},
		{"eq shift const", c.EqE(c.Const(7, 32), c.Add(c.Const(2, 32), x)), c.EqE(c.Const(5, 32), x)},
		{"urem pow2", c.URem(x, c.Const(8, 32)), c.And(x, c.Const(7, 32))},
		{"trunc zext", c.TruncE(c.ZExtE(x, 64), 32), x},
		{"zext zext", c.ZExtE(c.ZExtE(x, 40), 64), c.ZExtE(x, 64)},
		{"concat zero", c.Concat(c.Const(0, 8), c.ByteAt(arr, 0)), c.ZExtE(c.ByteAt(arr, 0), 16)},
		{"ite same", c.ITEe(c.EqE(x, y), x, x), x},
		{"not bool", c.NotB(c.NotB(c.EqE(x, y))), c.EqE(x, y)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.give != tt.want {
				t.Errorf("got %v, want %v", tt.give, tt.want)
			}
		})
	}
}

func TestHashConsing(t *testing.T) {
	c := NewContext()
	arr := NewArray("in", 4)
	a := c.Add(c.ZExtE(c.ByteAt(arr, 0), 32), c.Const(5, 32))
	b := c.Add(c.ZExtE(c.ByteAt(arr, 0), 32), c.Const(5, 32))
	if a != b {
		t.Errorf("identical expressions are not pointer-equal: %p vs %p", a, b)
	}
}

func TestEvaluator(t *testing.T) {
	c := NewContext()
	arr := NewArray("in", 4)
	asn := Assignment{arr: []byte{0x10, 0x20, 0x30, 0x40}}
	ev := NewEvaluator(asn)

	le32 := c.ReadLE(arr, 0, 4)
	if got := ev.Eval(le32); got != 0x40302010 {
		t.Errorf("ReadLE = %#x, want 0x40302010", got)
	}
	sum := c.Add(c.ZExtE(c.ByteAt(arr, 0), 32), c.ZExtE(c.ByteAt(arr, 1), 32))
	if got := ev.Eval(sum); got != 0x30 {
		t.Errorf("sum = %#x, want 0x30", got)
	}
	cmp := c.UltE(c.ByteAt(arr, 2), c.ByteAt(arr, 3))
	if !ev.EvalBool(cmp) {
		t.Errorf("0x30 < 0x40 should hold")
	}
}

func TestEvaluatorDefaultsToZero(t *testing.T) {
	c := NewContext()
	arr := NewArray("in", 4)
	ev := NewEvaluator(Assignment{})
	if got := ev.Eval(c.ByteAt(arr, 2)); got != 0 {
		t.Errorf("unassigned byte = %d, want 0", got)
	}
}

func TestReads(t *testing.T) {
	c := NewContext()
	arr := NewArray("in", 8)
	e := c.Add(c.ZExtE(c.ByteAt(arr, 1), 32), c.ZExtE(c.ByteAt(arr, 5), 32))
	e = c.Mul(e, c.ZExtE(c.ByteAt(arr, 1), 32)) // duplicate read of byte 1
	rs := Reads(e)
	if len(rs) != 2 {
		t.Fatalf("got %d reads, want 2: %v", len(rs), rs)
	}
	seen := map[int]bool{}
	for _, r := range rs {
		if r.Arr != arr {
			t.Errorf("read from wrong array %v", r.Arr)
		}
		seen[r.Idx] = true
	}
	if !seen[1] || !seen[5] {
		t.Errorf("missing expected indices, got %v", rs)
	}
}

// TestSimplifierPreservesSemantics is the core property test: for random
// expressions, the value computed through the simplifying constructors must
// match the same computation done directly on concrete values. We verify by
// re-generating the same expression and checking evaluation under many
// random assignments (the constructors are the only path, so we compare a
// simplified expr against brute-force evaluation of its own structure, which
// Evaluator performs without consulting the simplifier).
func TestSimplifierPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := NewContext()
	arr := NewArray("in", 8)
	for i := 0; i < 300; i++ {
		e := RandExpr(c, rng, arr, 32, 4)
		for j := 0; j < 4; j++ {
			bs := make([]byte, arr.Size)
			rng.Read(bs)
			ev := NewEvaluator(Assignment{arr: bs})
			v1 := ev.Eval(e)
			// Rebuild a larger expression around e and a constant; the
			// simplifier may rewrite; semantics must be stable.
			k := rng.Uint64()
			e2 := c.Sub(c.Add(e, c.Const(k, 32)), c.Const(k, 32))
			v2 := NewEvaluator(Assignment{arr: bs}).Eval(e2)
			if v1 != v2 {
				t.Fatalf("iter %d: add/sub roundtrip changed value: %#x vs %#x for %v", i, v1, v2, e)
			}
			e3 := c.Xor(c.Xor(e, c.Const(k, 32)), c.Const(k, 32))
			v3 := NewEvaluator(Assignment{arr: bs}).Eval(e3)
			if v1 != v3 {
				t.Fatalf("iter %d: xor roundtrip changed value: %#x vs %#x", i, v1, v3)
			}
		}
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	c := NewContext()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on width mismatch")
		}
	}()
	c.Add(c.Const(1, 8), c.Const(1, 16))
}

func TestReadOutOfRangePanics(t *testing.T) {
	c := NewContext()
	arr := NewArray("in", 4)
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on out-of-range read")
		}
	}()
	c.ByteAt(arr, 4)
}

func TestStringRendering(t *testing.T) {
	c := NewContext()
	arr := NewArray("in", 4)
	e := c.Add(c.ZExtE(c.ByteAt(arr, 0), 32), c.Const(5, 32))
	got := e.String()
	want := "(add 5:w32 (zext:w32 in[0]))"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestBoolHelpers(t *testing.T) {
	c := NewContext()
	if !c.True().IsTrue() || !c.False().IsFalse() {
		t.Fatal("True/False broken")
	}
	if c.Bool(true) != c.True() || c.Bool(false) != c.False() {
		t.Fatal("Bool not interned")
	}
	arr := NewArray("in", 2)
	p := c.EqE(c.ByteAt(arr, 0), c.Const(7, 8))
	if c.AndB(p, c.True()) != p {
		t.Errorf("p && true != p")
	}
	if !c.AndB(p, c.False()).IsFalse() {
		t.Errorf("p && false != false")
	}
	if c.OrB(p, c.False()) != p {
		t.Errorf("p || false != p")
	}
	if !c.OrB(p, c.True()).IsTrue() {
		t.Errorf("p || true != true")
	}
}

func BenchmarkExprConstruction(b *testing.B) {
	c := NewContext()
	arr := NewArray("in", 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := c.ZExtE(c.ByteAt(arr, i%64), 32)
		e = c.Add(e, c.Const(uint64(i), 32))
		e = c.Mul(e, c.Const(3, 32))
		_ = c.UltE(e, c.Const(1000, 32))
	}
}

func BenchmarkEval(b *testing.B) {
	c := NewContext()
	arr := NewArray("in", 64)
	rng := rand.New(rand.NewSource(7))
	e := RandExpr(c, rng, arr, 32, 8)
	bs := make([]byte, 64)
	rng.Read(bs)
	asn := Assignment{arr: bs}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewEvaluator(asn).Eval(e)
	}
}
