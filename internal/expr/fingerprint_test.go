package expr

import "testing"

// Structurally distinct constraints that denote the same value range
// (interval-equal) must still fingerprint differently: the subsumption
// store keys summaries by structure, not by semantics, and a collision
// here would merge states with different path conditions.
func TestFingerprintIntervalEqualNotCollided(t *testing.T) {
	c := NewContext()
	arr := NewArray("in", 4)
	x := c.ZExtE(c.ByteAt(arr, 0), 32)

	// all four pin x into [0,4] but with different structure
	shapes := []*Expr{
		c.UltE(x, c.Const(5, 32)),
		c.UleE(x, c.Const(4, 32)),
		c.NotB(c.UltE(c.Const(4, 32), x)),
		c.UltE(c.URem(x, c.Const(5, 32)), c.Const(5, 32)),
	}
	memo := make(map[*Expr]uint64)
	seen := make(map[uint64]*Expr)
	for _, s := range shapes {
		fp := Fingerprint(s, memo)
		if prev, dup := seen[fp]; dup {
			t.Fatalf("fingerprint collision between %v and %v", prev, s)
		}
		seen[fp] = s
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	c := NewContext()
	arr := NewArray("in", 4)
	x := c.ZExtE(c.ByteAt(arr, 0), 32)
	memo := make(map[*Expr]uint64)

	pairs := []struct {
		name string
		a, b *Expr
	}{
		{"operand-order", c.UltE(x, c.Const(5, 32)), c.UltE(c.Const(5, 32), x)},
		{"const-value", c.Const(1, 32), c.Const(2, 32)},
		{"const-width", c.Const(1, 32), c.Const(1, 64)},
		{"read-offset", c.ByteAt(arr, 0), c.ByteAt(arr, 1)},
		{"read-array", c.ByteAt(arr, 0), c.ByteAt(NewArray("other", 4), 0)},
		{"kind", c.Add(x, x), c.Mul(x, x)},
	}
	for _, p := range pairs {
		if Fingerprint(p.a, memo) == Fingerprint(p.b, memo) {
			t.Errorf("%s: %v and %v collide", p.name, p.a, p.b)
		}
	}
}

// Fingerprints are context-free: rebuilding the same structure in a
// fresh context (as the cross-run import path does) yields the same
// hash, memoised or not.
func TestFingerprintStableAcrossContexts(t *testing.T) {
	build := func() *Expr {
		c := NewContext()
		arr := NewArray("in", 4)
		x := c.ZExtE(c.ByteAt(arr, 0), 32)
		return c.UltE(c.URem(x, c.Const(5, 32)), c.Const(3, 32))
	}
	a, b := build(), build()
	if a == b {
		t.Fatal("distinct contexts interned the same pointer")
	}
	fa := Fingerprint(a, make(map[*Expr]uint64))
	fb := Fingerprint(b, make(map[*Expr]uint64))
	if fa != fb {
		t.Fatalf("same structure, different fingerprints: %#x vs %#x", fa, fb)
	}
	// memoised second call returns the identical value
	memo := map[*Expr]uint64{}
	if Fingerprint(a, memo) != Fingerprint(a, memo) {
		t.Fatal("memoised fingerprint unstable")
	}
}
