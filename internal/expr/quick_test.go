package expr

import (
	"testing"
	"testing/quick"
)

// TestConstOpsMatchGoSemantics uses testing/quick to compare every
// constant-folded operator against direct Go arithmetic at width 32.
func TestConstOpsMatchGoSemantics(t *testing.T) {
	c := NewContext()
	const w = 32
	m := uint64(0xffffffff)
	f := func(a, b uint32) bool {
		av, bv := uint64(a), uint64(b)
		ca, cb := c.Const(av, w), c.Const(bv, w)
		checks := []struct {
			got  *Expr
			want uint64
		}{
			{c.Add(ca, cb), (av + bv) & m},
			{c.Sub(ca, cb), (av - bv) & m},
			{c.Mul(ca, cb), (av * bv) & m},
			{c.And(ca, cb), av & bv},
			{c.Or(ca, cb), av | bv},
			{c.Xor(ca, cb), av ^ bv},
			{c.NotE(ca), ^av & m},
		}
		if bv != 0 {
			checks = append(checks,
				struct {
					got  *Expr
					want uint64
				}{c.UDiv(ca, cb), av / bv},
				struct {
					got  *Expr
					want uint64
				}{c.URem(ca, cb), av % bv},
			)
		}
		for _, ch := range checks {
			if !ch.got.IsConst() || ch.got.Value() != ch.want {
				return false
			}
		}
		// comparisons
		if c.UltE(ca, cb).Value() != b2u(av < bv) {
			return false
		}
		if c.SltE(ca, cb).Value() != b2u(int32(a) < int32(b)) {
			return false
		}
		if c.EqE(ca, cb).Value() != b2u(av == bv) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestShiftsMatchGoSemantics covers the shift overshoot conventions.
func TestShiftsMatchGoSemantics(t *testing.T) {
	c := NewContext()
	const w = 16
	m := uint64(0xffff)
	f := func(a uint16, shRaw uint8) bool {
		sh := uint64(shRaw % 24) // exercises overshift
		av := uint64(a)
		ca := c.Const(av, w)
		cs := c.Const(sh, w)
		var wantShl, wantShr, wantSar uint64
		if sh >= w {
			wantShl, wantShr = 0, 0
			if av>>15&1 == 1 {
				wantSar = m
			}
		} else {
			wantShl = (av << sh) & m
			wantShr = av >> sh
			wantSar = uint64(int64(int16(a))>>sh) & m
		}
		return c.Shl(ca, cs).Value() == wantShl &&
			c.LShr(ca, cs).Value() == wantShr &&
			c.AShr(ca, cs).Value() == wantSar
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestEvalMatchesConstFold: for random expressions over a concrete
// assignment, constant-folding the assignment in (by building with Const
// leaves) equals evaluating the symbolic expression under the assignment.
func TestEvalMatchesConstFold(t *testing.T) {
	c := NewContext()
	arr := NewArray("in", 4)
	f := func(b0, b1, b2, b3 byte, pick uint8) bool {
		bs := []byte{b0, b1, b2, b3}
		asn := Assignment{arr: bs}
		ev := NewEvaluator(asn)
		i := int(pick) % 3
		sym := c.Add(c.ZExtE(c.ByteAt(arr, i), 32), c.ZExtE(c.ByteAt(arr, i+1), 32))
		conc := c.Add(c.Const(uint64(bs[i]), 32), c.Const(uint64(bs[i+1]), 32))
		return ev.Eval(sym) == conc.Value()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
