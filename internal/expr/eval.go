package expr

// Assignment binds every symbolic array to concrete bytes. Arrays absent
// from the assignment evaluate as all-zero.
type Assignment map[*Array][]byte

// ByteOf returns the assigned value of arr[idx], defaulting to zero.
func (a Assignment) ByteOf(arr *Array, idx int) byte {
	bs, ok := a[arr]
	if !ok || idx >= len(bs) {
		return 0
	}
	return bs[idx]
}

// Clone returns a deep copy of the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for arr, bs := range a {
		cp := make([]byte, len(bs))
		copy(cp, bs)
		out[arr] = cp
	}
	return out
}

// Evaluator computes concrete values of expressions under an Assignment,
// memoising per-node results. Reset the cache (or make a new Evaluator)
// when the assignment changes.
type Evaluator struct {
	asn   Assignment
	cache map[*Expr]uint64
}

// NewEvaluator returns an evaluator for the given assignment.
func NewEvaluator(asn Assignment) *Evaluator {
	return &Evaluator{asn: asn, cache: make(map[*Expr]uint64, 256)}
}

// Eval returns the value of e under the evaluator's assignment, truncated
// to e's width.
func (ev *Evaluator) Eval(e *Expr) uint64 {
	if e.kind == Const {
		return e.val
	}
	if v, ok := ev.cache[e]; ok {
		return v
	}
	v := ev.eval(e)
	ev.cache[e] = v
	return v
}

// EvalBool returns the truth value of a width-1 expression.
func (ev *Evaluator) EvalBool(e *Expr) bool { return ev.Eval(e) == 1 }

func (ev *Evaluator) eval(e *Expr) uint64 {
	w := e.Width()
	switch e.kind {
	case Read:
		return uint64(ev.asn.ByteOf(e.arr, int(e.val)))
	case Add:
		return (ev.Eval(e.kids[0]) + ev.Eval(e.kids[1])) & mask(w)
	case Sub:
		return (ev.Eval(e.kids[0]) - ev.Eval(e.kids[1])) & mask(w)
	case Mul:
		return (ev.Eval(e.kids[0]) * ev.Eval(e.kids[1])) & mask(w)
	case UDiv:
		b := ev.Eval(e.kids[1])
		if b == 0 {
			return mask(w)
		}
		return ev.Eval(e.kids[0]) / b
	case SDiv:
		b := ev.Eval(e.kids[1])
		if b == 0 {
			return mask(w)
		}
		q := int64(sext(ev.Eval(e.kids[0]), w)) / int64(sext(b, w))
		return uint64(q) & mask(w)
	case URem:
		b := ev.Eval(e.kids[1])
		if b == 0 {
			return ev.Eval(e.kids[0])
		}
		return ev.Eval(e.kids[0]) % b
	case SRem:
		b := ev.Eval(e.kids[1])
		if b == 0 {
			return ev.Eval(e.kids[0])
		}
		r := int64(sext(ev.Eval(e.kids[0]), w)) % int64(sext(b, w))
		return uint64(r) & mask(w)
	case And:
		return ev.Eval(e.kids[0]) & ev.Eval(e.kids[1])
	case Or:
		return ev.Eval(e.kids[0]) | ev.Eval(e.kids[1])
	case Xor:
		return ev.Eval(e.kids[0]) ^ ev.Eval(e.kids[1])
	case Not:
		return ^ev.Eval(e.kids[0]) & mask(w)
	case Shl:
		sh := ev.Eval(e.kids[1])
		if sh >= uint64(w) {
			return 0
		}
		return (ev.Eval(e.kids[0]) << sh) & mask(w)
	case LShr:
		sh := ev.Eval(e.kids[1])
		if sh >= uint64(w) {
			return 0
		}
		return ev.Eval(e.kids[0]) >> sh
	case AShr:
		sh := ev.Eval(e.kids[1])
		if sh >= uint64(w) {
			sh = uint64(w) - 1
		}
		return uint64(int64(sext(ev.Eval(e.kids[0]), w))>>sh) & mask(w)
	case Eq:
		return b2u(ev.Eval(e.kids[0]) == ev.Eval(e.kids[1]))
	case Ult:
		return b2u(ev.Eval(e.kids[0]) < ev.Eval(e.kids[1]))
	case Ule:
		return b2u(ev.Eval(e.kids[0]) <= ev.Eval(e.kids[1]))
	case Slt:
		kw := e.kids[0].Width()
		return b2u(int64(sext(ev.Eval(e.kids[0]), kw)) < int64(sext(ev.Eval(e.kids[1]), kw)))
	case Sle:
		kw := e.kids[0].Width()
		return b2u(int64(sext(ev.Eval(e.kids[0]), kw)) <= int64(sext(ev.Eval(e.kids[1]), kw)))
	case ZExt:
		return ev.Eval(e.kids[0])
	case SExt:
		return sext(ev.Eval(e.kids[0]), e.kids[0].Width()) & mask(w)
	case Trunc:
		return ev.Eval(e.kids[0]) & mask(w)
	case Concat:
		return (ev.Eval(e.kids[0])<<e.kids[1].Width() | ev.Eval(e.kids[1])) & mask(w)
	case ITE:
		if ev.Eval(e.kids[0]) == 1 {
			return ev.Eval(e.kids[1])
		}
		return ev.Eval(e.kids[2])
	default:
		panic("expr: eval: unknown kind " + e.kind.String())
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// SymByte identifies a single symbolic byte of some array.
type SymByte struct {
	Arr *Array
	Idx int
}

// CollectReads appends every distinct symbolic byte referenced by e into
// the set, using seen to avoid re-walking shared subgraphs across calls.
func CollectReads(e *Expr, seen map[*Expr]bool, set map[SymByte]bool) {
	if e.kind == Const || seen[e] {
		return
	}
	seen[e] = true
	if e.kind == Read {
		set[SymByte{Arr: e.arr, Idx: int(e.val)}] = true
		return
	}
	for i := 0; i < int(e.nkids); i++ {
		CollectReads(e.kids[i], seen, set)
	}
}

// Reads returns the distinct symbolic bytes referenced by e.
func Reads(e *Expr) []SymByte {
	set := make(map[SymByte]bool)
	CollectReads(e, make(map[*Expr]bool), set)
	out := make([]SymByte, 0, len(set))
	for sb := range set {
		out = append(out, sb)
	}
	return out
}
