package expr

import "math/rand"

// RandExpr generates a random expression of the given width over bytes of
// arr, with the given maximum DAG depth. It is used by property-based tests
// in this module (solver correctness is checked against direct evaluation
// on random expressions), and by fuzz-style failure-injection tests.
func RandExpr(c *Context, rng *rand.Rand, arr *Array, width uint, depth int) *Expr {
	if depth <= 0 || rng.Intn(4) == 0 {
		// leaf: constant or (extended/truncated) symbolic byte
		if rng.Intn(2) == 0 {
			return c.Const(rng.Uint64(), width)
		}
		b := c.ByteAt(arr, rng.Intn(arr.Size))
		switch {
		case width == 8:
			return b
		case width < 8:
			return c.TruncE(b, width)
		case rng.Intn(2) == 0:
			return c.ZExtE(b, width)
		default:
			return c.SExtE(b, width)
		}
	}
	sub := func(w uint) *Expr { return RandExpr(c, rng, arr, w, depth-1) }
	switch rng.Intn(16) {
	case 0:
		return c.Add(sub(width), sub(width))
	case 1:
		return c.Sub(sub(width), sub(width))
	case 2:
		return c.Mul(sub(width), sub(width))
	case 3:
		return c.And(sub(width), sub(width))
	case 4:
		return c.Or(sub(width), sub(width))
	case 5:
		return c.Xor(sub(width), sub(width))
	case 6:
		return c.NotE(sub(width))
	case 7:
		return c.Shl(sub(width), c.Const(uint64(rng.Intn(int(width)+2)), width))
	case 8:
		return c.LShr(sub(width), c.Const(uint64(rng.Intn(int(width)+2)), width))
	case 9:
		return c.AShr(sub(width), c.Const(uint64(rng.Intn(int(width)+2)), width))
	case 10:
		cond := RandBoolExpr(c, rng, arr, depth-1)
		return c.ITEe(cond, sub(width), sub(width))
	case 11:
		if width > 1 {
			lo := uint(rng.Intn(int(width)-1)) + 1
			return c.Concat(sub(width-lo), sub(lo))
		}
		return sub(width)
	case 12:
		if width > 1 {
			narrow := uint(rng.Intn(int(width)-1)) + 1
			if rng.Intn(2) == 0 {
				return c.ZExtE(sub(narrow), width)
			}
			return c.SExtE(sub(narrow), width)
		}
		return sub(width)
	case 13:
		return c.UDiv(sub(width), sub(width))
	case 14:
		return c.URem(sub(width), sub(width))
	default:
		wide := width
		if width < 64 {
			wide = width + uint(rng.Intn(int(64-width)+1))
		}
		return c.TruncE(sub(wide), width)
	}
}

// RandBoolExpr generates a random width-1 expression over bytes of arr.
func RandBoolExpr(c *Context, rng *rand.Rand, arr *Array, depth int) *Expr {
	if depth <= 0 {
		return c.Bool(rng.Intn(2) == 0)
	}
	w := uint(1 << (3 + rng.Intn(3))) // 8, 16, 32
	a := RandExpr(c, rng, arr, w, depth-1)
	b := RandExpr(c, rng, arr, w, depth-1)
	switch rng.Intn(8) {
	case 0:
		return c.EqE(a, b)
	case 1:
		return c.NeE(a, b)
	case 2:
		return c.UltE(a, b)
	case 3:
		return c.UleE(a, b)
	case 4:
		return c.SltE(a, b)
	case 5:
		return c.SleE(a, b)
	case 6:
		return c.AndB(RandBoolExpr(c, rng, arr, depth-1), RandBoolExpr(c, rng, arr, depth-1))
	default:
		return c.OrB(RandBoolExpr(c, rng, arr, depth-1), RandBoolExpr(c, rng, arr, depth-1))
	}
}
