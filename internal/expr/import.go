package expr

import "fmt"

// Cross-context expression transport. The parallel pbSE scheduler gives
// every phase worker its own Context (hash-consing stays lock-free), so
// seedStates built in the shared concolic Context must be rebuilt in the
// worker's Context, and solver cache keys must identify a constraint by
// structure rather than by per-Context node ids.

// Fingerprint returns a structural 64-bit hash of e: two expressions that
// are structurally identical get the same fingerprint in any Context.
// memo caches per-node results and may be shared across calls for
// expressions of one Context (nodes are interned, so pointer identity
// implies structural identity there).
func Fingerprint(e *Expr, memo map[*Expr]uint64) uint64 {
	if h, ok := memo[e]; ok {
		return h
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(e.kind))
	mix(uint64(e.width))
	switch e.kind {
	case Const:
		mix(e.val)
	case Read:
		mix(e.val)
		for i := 0; i < len(e.arr.Name); i++ {
			h ^= uint64(e.arr.Name[i])
			h *= prime64
		}
	default:
		for i := 0; i < int(e.nkids); i++ {
			mix(Fingerprint(e.kids[i], memo))
		}
	}
	memo[e] = h
	return h
}

// Importer rebuilds expressions of one Context inside another. Arrays are
// mapped by the translation table given at construction (arrays are
// identity objects, so both Contexts may even share them; a mapping is
// still required so a worker can own a private input array). The importer
// memoises per-node, so importing a state's whole expression DAG is
// linear in its distinct nodes.
type Importer struct {
	dst    *Context
	arrays map[*Array]*Array
	memo   map[*Expr]*Expr
}

// NewImporter returns an importer into dst. arrays maps source arrays to
// their destination counterparts; a source array absent from the map is
// reused as-is.
func NewImporter(dst *Context, arrays map[*Array]*Array) *Importer {
	return &Importer{dst: dst, arrays: arrays, memo: make(map[*Expr]*Expr, 1024)}
}

// Import rebuilds e in the destination Context through the public
// constructors, re-running their simplifications (an already-canonical
// expression re-canonicalises to an equivalent form; node ids may differ).
func (im *Importer) Import(e *Expr) *Expr {
	if out, ok := im.memo[e]; ok {
		return out
	}
	c := im.dst
	var out *Expr
	switch e.kind {
	case Const:
		out = c.Const(e.val, e.Width())
	case Read:
		arr := e.arr
		if m, ok := im.arrays[arr]; ok {
			arr = m
		}
		out = c.ByteAt(arr, int(e.val))
	case Add:
		out = c.Add(im.Import(e.kids[0]), im.Import(e.kids[1]))
	case Sub:
		out = c.Sub(im.Import(e.kids[0]), im.Import(e.kids[1]))
	case Mul:
		out = c.Mul(im.Import(e.kids[0]), im.Import(e.kids[1]))
	case UDiv:
		out = c.UDiv(im.Import(e.kids[0]), im.Import(e.kids[1]))
	case SDiv:
		out = c.SDiv(im.Import(e.kids[0]), im.Import(e.kids[1]))
	case URem:
		out = c.URem(im.Import(e.kids[0]), im.Import(e.kids[1]))
	case SRem:
		out = c.SRem(im.Import(e.kids[0]), im.Import(e.kids[1]))
	case And:
		out = c.And(im.Import(e.kids[0]), im.Import(e.kids[1]))
	case Or:
		out = c.Or(im.Import(e.kids[0]), im.Import(e.kids[1]))
	case Xor:
		out = c.Xor(im.Import(e.kids[0]), im.Import(e.kids[1]))
	case Not:
		out = c.NotE(im.Import(e.kids[0]))
	case Shl:
		out = c.Shl(im.Import(e.kids[0]), im.Import(e.kids[1]))
	case LShr:
		out = c.LShr(im.Import(e.kids[0]), im.Import(e.kids[1]))
	case AShr:
		out = c.AShr(im.Import(e.kids[0]), im.Import(e.kids[1]))
	case Eq:
		out = c.EqE(im.Import(e.kids[0]), im.Import(e.kids[1]))
	case Ult:
		out = c.UltE(im.Import(e.kids[0]), im.Import(e.kids[1]))
	case Ule:
		out = c.UleE(im.Import(e.kids[0]), im.Import(e.kids[1]))
	case Slt:
		out = c.SltE(im.Import(e.kids[0]), im.Import(e.kids[1]))
	case Sle:
		out = c.SleE(im.Import(e.kids[0]), im.Import(e.kids[1]))
	case ZExt:
		out = c.ZExtE(im.Import(e.kids[0]), e.Width())
	case SExt:
		out = c.SExtE(im.Import(e.kids[0]), e.Width())
	case Trunc:
		out = c.TruncE(im.Import(e.kids[0]), e.Width())
	case Concat:
		out = c.Concat(im.Import(e.kids[0]), im.Import(e.kids[1]))
	case ITE:
		out = c.ITEe(im.Import(e.kids[0]), im.Import(e.kids[1]), im.Import(e.kids[2]))
	default:
		panic(fmt.Sprintf("expr: import: unknown kind %s", e.kind))
	}
	im.memo[e] = out
	return out
}

// ImportAssignment maps an assignment's arrays through the importer's
// translation table, copying the byte slices.
func (im *Importer) ImportAssignment(asn Assignment) Assignment {
	if asn == nil {
		return nil
	}
	out := make(Assignment, len(asn))
	for arr, bs := range asn {
		if m, ok := im.arrays[arr]; ok {
			arr = m
		}
		cp := make([]byte, len(bs))
		copy(cp, bs)
		out[arr] = cp
	}
	return out
}
