package expr

import (
	"math/rand"
	"testing"
)

// FuzzImportEquivalence checks that rebuilding a random expression through
// the Importer — which re-runs every constructor's simplification in a
// fresh Context — preserves concrete semantics, and that two independent
// imports of the same source agree on the structural fingerprint (the
// shared verdict-cache key). Source and import may fingerprint differently
// (commutative operands canonicalise by context-local intern IDs), but
// islands that deterministically import the same seed constraints must
// land on one key, or the shared cache never hits across workers.
func FuzzImportEquivalence(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(int64(42), []byte{0xff, 0xff, 0xff, 0xff})
	f.Add(int64(1<<40), []byte{0x80, 0x7f, 0x00, 0x01, 0xfe})
	f.Add(int64(-9), []byte("pbse-phase"))
	f.Fuzz(func(t *testing.T, seed int64, input []byte) {
		if len(input) == 0 {
			input = []byte{0}
		}
		if len(input) > 64 {
			input = input[:64]
		}
		rng := rand.New(rand.NewSource(seed))

		src := NewContext()
		arr := NewArray("in", len(input))
		exprs := []*Expr{
			RandExpr(src, rng, arr, 32, 5),
			RandExpr(src, rng, arr, 64, 4),
			RandBoolExpr(src, rng, arr, 4),
		}

		dstA, dstB := NewContext(), NewContext()
		arrA, arrB := NewArray("in", len(input)), NewArray("in", len(input))
		imA := NewImporter(dstA, map[*Array]*Array{arr: arrA})
		imB := NewImporter(dstB, map[*Array]*Array{arr: arrB})

		evSrc := NewEvaluator(Assignment{arr: input})
		evA := NewEvaluator(Assignment{arrA: input})
		memo := make(map[*Expr]uint64)
		for _, e := range exprs {
			a, b := imA.Import(e), imB.Import(e)
			if e.Width() != a.Width() {
				t.Fatalf("import changed width: %d -> %d of %v", e.Width(), a.Width(), e)
			}
			want, got := evSrc.Eval(e), evA.Eval(a)
			if want != got {
				t.Fatalf("import changed value: %#x -> %#x\n src: %v\n dst: %v", want, got, e, a)
			}
			if fpA, fpB := Fingerprint(a, memo), Fingerprint(b, memo); fpA != fpB {
				t.Fatalf("independent imports disagree on fingerprint: %#x vs %#x\n a: %v\n b: %v", fpA, fpB, a, b)
			}
		}
	})
}
