package expr

import "fmt"

// Verbatim reconstruction of expression nodes, used by the persistent
// checkpoint codec (internal/store). The public constructors canonicalise
// — constant folding, commutative reordering by node id — so decoding a
// checkpoint through them could rebuild a *different* (if equivalent) DAG
// than was saved: node shapes, and with them structural fingerprints and
// solver cache keys, would drift between a run and its resumption.
// Rebuild interns a node with exactly the stored shape instead, so
// decode(encode(x)) is structurally identical to x and fingerprint-stable.

// Arity returns the number of children nodes of the given kind carry, or
// -1 for an unknown kind. Exposed for the store codec, which must agree
// with this package on operator shapes.
func Arity(k Kind) int {
	switch k {
	case Const, Read:
		return 0
	case Not, ZExt, SExt, Trunc:
		return 1
	case Add, Sub, Mul, UDiv, SDiv, URem, SRem,
		And, Or, Xor, Shl, LShr, AShr,
		Eq, Ult, Ule, Slt, Sle, Concat:
		return 2
	case ITE:
		return 3
	default:
		return -1
	}
}

// Rebuild interns the node (kind, width, val, arr, kids) exactly as
// given, bypassing constructor simplifications. It validates operator
// arity and the width/bounds invariants the evaluator and solver assume;
// a shape the constructors could never have produced is rejected with an
// error — never a panic — so Rebuild is safe on untrusted bytes.
func (c *Context) Rebuild(kind Kind, width uint, val uint64, arr *Array, kids []*Expr) (*Expr, error) {
	n := Arity(kind)
	if n < 0 {
		return nil, fmt.Errorf("expr: rebuild: unknown kind %d", uint8(kind))
	}
	if len(kids) != n {
		return nil, fmt.Errorf("expr: rebuild: %s wants %d kids, got %d", kind, n, len(kids))
	}
	for i, k := range kids {
		if k == nil {
			return nil, fmt.Errorf("expr: rebuild: %s kid %d is nil", kind, i)
		}
	}
	if width == 0 || width > 64 {
		return nil, fmt.Errorf("expr: rebuild: bad width %d", width)
	}

	switch kind {
	case Const:
		if val&mask(width) != val {
			return nil, fmt.Errorf("expr: rebuild: const %d overflows width %d", val, width)
		}
	case Read:
		if arr == nil {
			return nil, fmt.Errorf("expr: rebuild: read without array")
		}
		if width != 8 {
			return nil, fmt.Errorf("expr: rebuild: read width %d (want 8)", width)
		}
		if val >= uint64(arr.Size) {
			return nil, fmt.Errorf("expr: rebuild: read %s[%d] out of range (size %d)", arr.Name, val, arr.Size)
		}
	case Not:
		if kids[0].Width() != width {
			return nil, fmt.Errorf("expr: rebuild: not width %d on %d-bit kid", width, kids[0].Width())
		}
	case ZExt, SExt:
		if width <= kids[0].Width() {
			return nil, fmt.Errorf("expr: rebuild: %s to width %d from %d", kind, width, kids[0].Width())
		}
	case Trunc:
		if width >= kids[0].Width() {
			return nil, fmt.Errorf("expr: rebuild: trunc to width %d from %d", width, kids[0].Width())
		}
	case Eq, Ult, Ule, Slt, Sle:
		if width != 1 {
			return nil, fmt.Errorf("expr: rebuild: %s width %d (want 1)", kind, width)
		}
		if kids[0].Width() != kids[1].Width() {
			return nil, fmt.Errorf("expr: rebuild: %s kid widths %d vs %d", kind, kids[0].Width(), kids[1].Width())
		}
	case Concat:
		if kids[0].Width()+kids[1].Width() != width {
			return nil, fmt.Errorf("expr: rebuild: concat width %d != %d+%d", width, kids[0].Width(), kids[1].Width())
		}
	case ITE:
		if kids[0].Width() != 1 {
			return nil, fmt.Errorf("expr: rebuild: ite condition width %d (want 1)", kids[0].Width())
		}
		if kids[1].Width() != width || kids[2].Width() != width {
			return nil, fmt.Errorf("expr: rebuild: ite arm widths %d/%d (want %d)", kids[1].Width(), kids[2].Width(), width)
		}
	default: // binary arithmetic/bitwise
		if kids[0].Width() != width || kids[1].Width() != width {
			return nil, fmt.Errorf("expr: rebuild: %s kid widths %d/%d (want %d)", kind, kids[0].Width(), kids[1].Width(), width)
		}
	}

	k := key{kind: kind, width: uint8(width), val: val, arr: arr}
	switch n {
	case 1:
		k.k0 = kids[0]
	case 2:
		k.k0, k.k1 = kids[0], kids[1]
	case 3:
		k.k0, k.k1, k.k2 = kids[0], kids[1], kids[2]
	}
	return c.mk(k), nil
}

// structKey memoises StructEqual on node pairs.
type structKey struct{ a, b *Expr }

// StructEqual reports whether a and b are structurally identical: same
// operator tree, widths, constants, read indices, and arrays (compared by
// name and size, since arrays are identity objects per Context). Within
// one Context it coincides with pointer equality; across Contexts it is
// the relation the checkpoint codec preserves.
func StructEqual(a, b *Expr) bool {
	return structEqual(a, b, make(map[structKey]bool))
}

func structEqual(a, b *Expr, memo map[structKey]bool) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	k := structKey{a, b}
	if v, ok := memo[k]; ok {
		return v
	}
	memo[k] = true // assume equal on cycles (DAGs have none; guards recursion)
	eq := a.kind == b.kind && a.width == b.width && a.val == b.val && a.nkids == b.nkids
	if eq && a.kind == Read {
		eq = a.arr.Name == b.arr.Name && a.arr.Size == b.arr.Size
	}
	for i := 0; eq && i < int(a.nkids); i++ {
		eq = structEqual(a.kids[i], b.kids[i], memo)
	}
	memo[k] = eq
	return eq
}
