package interp

import (
	"testing"

	"pbse/internal/ir"
)

// buildSumLoop: sums input bytes, stores result, asserts sum fits, exits.
func buildSumLoop(t *testing.T) *ir.Program {
	t.Helper()
	p := ir.NewProgram("sumloop")
	fb := p.NewFunc("main", 0)
	entry := fb.NewBlock("entry")
	head := fb.NewBlock("head")
	body := fb.NewBlock("body")
	done := fb.NewBlock("done")

	i := fb.NewReg()
	sum := fb.NewReg()
	inPtr := fb.NewReg()
	n := fb.NewReg()

	entry.ConstTo(i, 0, 32)
	entry.ConstTo(sum, 0, 32)
	ip := entry.Input()
	entry.MovTo(inPtr, ip, 64)
	nl := entry.InputLen(32)
	entry.MovTo(n, nl, 32)
	entry.Jmp(head.Blk())

	c := head.Cmp(ir.Ult, i, n, 32)
	head.Br(c, body.Blk(), done.Blk())

	i64 := body.Zext(i, 64)
	addr := body.Add(inPtr, i64, 64)
	b := body.Load(addr, 0, 8)
	b32 := body.Zext(b, 32)
	ns := body.Add(sum, b32, 32)
	body.MovTo(sum, ns, 32)
	ni := body.AddImm(i, 1, 32)
	body.MovTo(i, ni, 32)
	body.Jmp(head.Blk())

	buf := done.Alloca(4)
	done.Store(buf, 0, sum, 32)
	done.Exit()

	if err := p.Finalize(); err != nil {
		t.Fatalf("finalize: %v", err)
	}
	return p
}

func TestSumLoop(t *testing.T) {
	p := buildSumLoop(t)
	var blocks []string
	m := New(p, []byte{1, 2, 3, 4}, Options{Tracer: func(b *ir.Block, _ int64) {
		blocks = append(blocks, b.Name)
	}})
	res := m.Run()
	if res.Reason != StopExited {
		t.Fatalf("reason = %v, fault = %v", res.Reason, res.Fault)
	}
	// entry, head, (body, head) x4, done
	wantBlocks := 2 + 4*2 + 1
	if len(blocks) != wantBlocks {
		t.Errorf("block entries = %d, want %d: %v", len(blocks), wantBlocks, blocks)
	}
	if blocks[0] != "entry" || blocks[len(blocks)-1] != "done" {
		t.Errorf("unexpected trace: %v", blocks)
	}
}

func TestTracerTimesMonotonic(t *testing.T) {
	p := buildSumLoop(t)
	var times []int64
	m := New(p, []byte{9, 9}, Options{Tracer: func(_ *ir.Block, s int64) {
		times = append(times, s)
	}})
	m.Run()
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("times not strictly increasing: %v", times)
		}
	}
}

// callProg: main calls add(a, b) and asserts the result.
func callProg(t *testing.T) *ir.Program {
	t.Helper()
	p := ir.NewProgram("call")
	ab := p.NewFunc("add2", 2)
	abb := ab.NewBlock("entry")
	s := abb.Add(ab.Param(0), ab.Param(1), 32)
	abb.Ret(s)

	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	x := b.Const(20, 32)
	y := b.Const(22, 32)
	r := b.Call("add2", x, y)
	ok := b.CmpImm(ir.Eq, r, 42, 32)
	b.Assert(ok, "add2 broken")
	b.Exit()
	if err := p.Finalize(); err != nil {
		t.Fatalf("finalize: %v", err)
	}
	return p
}

func TestCallReturn(t *testing.T) {
	p := callProg(t)
	res := New(p, nil, Options{}).Run()
	if res.Reason != StopExited {
		t.Fatalf("reason = %v, fault = %v", res.Reason, res.Fault)
	}
}

func TestAssertFailure(t *testing.T) {
	p := ir.NewProgram("assertfail")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	c := b.Const(0, 1)
	b.Assert(c, "always fails")
	b.Exit()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	res := New(p, nil, Options{}).Run()
	if res.Reason != StopFault || res.Fault.Kind != FaultAssert {
		t.Fatalf("want assert fault, got %+v", res)
	}
	if res.Fault.Msg != "always fails" {
		t.Errorf("msg = %q", res.Fault.Msg)
	}
}

func TestOOBRead(t *testing.T) {
	p := ir.NewProgram("oob")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	buf := b.Alloca(4)
	b.Load(buf, 4, 8) // one past the end
	b.Exit()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	res := New(p, nil, Options{}).Run()
	if res.Reason != StopFault || res.Fault.Kind != FaultOOBRead {
		t.Fatalf("want OOB read, got %+v", res)
	}
}

func TestOOBWrite(t *testing.T) {
	p := ir.NewProgram("oobw")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	buf := b.Alloca(4)
	v := b.Const(7, 32)
	b.Store(buf, 1, v, 32) // bytes 1..4, one past the end
	b.Exit()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	res := New(p, nil, Options{}).Run()
	if res.Reason != StopFault || res.Fault.Kind != FaultOOBWrite {
		t.Fatalf("want OOB write, got %+v", res)
	}
}

func TestNullDeref(t *testing.T) {
	p := ir.NewProgram("null")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	z := b.Const(0, 64)
	b.Load(z, 0, 8)
	b.Exit()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	res := New(p, nil, Options{}).Run()
	if res.Reason != StopFault || res.Fault.Kind != FaultNullDeref {
		t.Fatalf("want null deref, got %+v", res)
	}
}

func TestDivByZero(t *testing.T) {
	p := ir.NewProgram("div0")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	x := b.Const(10, 32)
	y := b.Const(0, 32)
	b.Bin(ir.UDiv, x, y, 32)
	b.Exit()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	res := New(p, nil, Options{}).Run()
	if res.Reason != StopFault || res.Fault.Kind != FaultDivByZero {
		t.Fatalf("want div-by-zero, got %+v", res)
	}
}

func TestStepBudget(t *testing.T) {
	// infinite loop
	p := ir.NewProgram("spin")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	b.Jmp(b.Blk())
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	res := New(p, nil, Options{MaxSteps: 100}).Run()
	if res.Reason != StopSteps {
		t.Fatalf("want step stop, got %+v", res)
	}
	if res.Steps != 100 {
		t.Errorf("steps = %d, want 100", res.Steps)
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	p := ir.NewProgram("mem")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	buf := b.Alloca(8)
	v := b.Const(0xdeadbeef, 32)
	b.Store(buf, 2, v, 32)
	rd := b.Load(buf, 2, 32)
	ok := b.Cmp(ir.Eq, rd, v, 32)
	b.Assert(ok, "mem roundtrip")
	// byte-level check: low byte at offset 2 must be 0xef (little endian)
	lo := b.Load(buf, 2, 8)
	ok2 := b.CmpImm(ir.Eq, lo, 0xef, 8)
	b.Assert(ok2, "little endian")
	b.Exit()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	res := New(p, nil, Options{}).Run()
	if res.Reason != StopExited {
		t.Fatalf("got %+v", res)
	}
}

func TestSwitchDispatch(t *testing.T) {
	build := func(inVal byte) *ir.Program {
		p := ir.NewProgram("sw")
		fb := p.NewFunc("main", 0)
		b := fb.NewBlock("entry")
		c1 := fb.NewBlock("c1")
		c2 := fb.NewBlock("c2")
		def := fb.NewBlock("def")
		ip := b.Input()
		v := b.Load(ip, 0, 8)
		b.Switch(v, []uint64{1, 2}, []*ir.Block{c1.Blk(), c2.Blk()}, def.Blk())
		c1.Exit()
		z2 := c2.Const(0, 1)
		c2.Assert(z2, "case2")
		c2.Exit()
		zd := def.Const(0, 1)
		def.Assert(zd, "default")
		def.Exit()
		if err := p.Finalize(); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// value 1 -> clean exit
	if res := New(build(1), []byte{1}, Options{}).Run(); res.Reason != StopExited {
		t.Errorf("case1: %+v", res)
	}
	// value 2 -> assert "case2"
	if res := New(build(2), []byte{2}, Options{}).Run(); res.Fault == nil || res.Fault.Msg != "case2" {
		t.Errorf("case2: %+v", res)
	}
	// value 9 -> default
	if res := New(build(9), []byte{9}, Options{}).Run(); res.Fault == nil || res.Fault.Msg != "default" {
		t.Errorf("default: %+v", res)
	}
}

func TestSextTruncSelect(t *testing.T) {
	p := ir.NewProgram("ext")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	neg := b.Const(0xff, 8) // -1 as i8
	wide := b.Sext(neg, 32)
	ok := b.CmpImm(ir.Eq, wide, 0xffffffff, 32)
	b.Assert(ok, "sext")
	tr := b.Trunc(wide, 8)
	ok2 := b.CmpImm(ir.Eq, tr, 0xff, 8)
	b.Assert(ok2, "trunc")
	cond := b.CmpImm(ir.Slt, neg, 0, 8) // -1 < 0 signed
	sel := b.Select(cond, tr, wide, 8)
	ok3 := b.CmpImm(ir.Eq, sel, 0xff, 8)
	b.Assert(ok3, "select")
	b.Exit()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	res := New(p, nil, Options{}).Run()
	if res.Reason != StopExited {
		t.Fatalf("got %+v", res)
	}
}

func TestInputLenAndEmptyInput(t *testing.T) {
	p := ir.NewProgram("ilen")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	n := b.InputLen(32)
	ok := b.CmpImm(ir.Eq, n, 0, 32)
	b.Assert(ok, "empty input")
	b.Exit()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	res := New(p, nil, Options{}).Run()
	if res.Reason != StopExited {
		t.Fatalf("got %+v", res)
	}
}

func BenchmarkInterpSumLoop(b *testing.B) {
	p := buildSumLoop(&testing.T{})
	input := make([]byte, 1024)
	for i := range input {
		input[i] = byte(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := New(p, input, Options{}).Run()
		if res.Reason != StopExited {
			b.Fatal("unexpected stop")
		}
	}
}
