// Package interp is the fast concrete interpreter for the IR. It executes
// a program on a concrete input file, reporting basic-block entries to an
// optional tracer (virtual time = executed instruction count) and
// detecting the same runtime faults the symbolic executor detects
// (out-of-bounds access, null dereference, division by zero, assertion
// failure).
package interp

import (
	"fmt"

	"pbse/internal/ir"
)

// FaultKind classifies a runtime fault.
type FaultKind int

// Fault kinds.
const (
	FaultOOBRead FaultKind = iota + 1
	FaultOOBWrite
	FaultNullDeref
	FaultDivByZero
	FaultAssert
)

var faultNames = map[FaultKind]string{
	FaultOOBRead:   "out-of-bounds read",
	FaultOOBWrite:  "out-of-bounds write",
	FaultNullDeref: "null dereference",
	FaultDivByZero: "division by zero",
	FaultAssert:    "assertion failure",
}

// String returns a human-readable fault class.
func (k FaultKind) String() string {
	if s, ok := faultNames[k]; ok {
		return s
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault describes a concrete runtime fault.
type Fault struct {
	Kind  FaultKind
	Block *ir.Block
	Index int // instruction index within Block
	Msg   string
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("%s at %s[%d]: %s", f.Kind, f.Block, f.Index, f.Msg)
}

// StopReason says why execution ended.
type StopReason int

// Stop reasons.
const (
	StopExited StopReason = iota + 1 // OpExit or main returned
	StopFault                        // runtime fault
	StopSteps                        // step budget exhausted
)

// Result summarises one concrete run.
type Result struct {
	Reason StopReason
	Fault  *Fault // set when Reason == StopFault
	Steps  int64
}

// Tracer receives basic-block entries with the virtual time (number of
// instructions executed so far).
type Tracer func(b *ir.Block, step int64)

// Options configure a run.
type Options struct {
	MaxSteps int64  // 0 means a generous default (100M)
	Tracer   Tracer // may be nil
}

// InputObjID is the object id of the symbolic/concrete input buffer.
const InputObjID = 1

// Machine executes one program on one input. Create a fresh Machine per
// run.
type Machine struct {
	prog   *ir.Program
	input  []byte
	opts   Options
	objs   [][]byte // by object id; 0 = null, 1 = input
	frames []frame
	steps  int64
}

type frame struct {
	fn     *ir.Func
	vals   []uint64
	widths []uint8
	// resume point in the caller
	retDst   ir.Reg
	retBlock *ir.Block
	retIndex int
}

// New returns a machine ready to run prog on input.
func New(prog *ir.Program, input []byte, opts Options) *Machine {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 100_000_000
	}
	m := &Machine{prog: prog, input: input, opts: opts}
	m.objs = make([][]byte, 2)
	m.objs[InputObjID] = input
	return m
}

// Run executes until exit, fault, or the step budget.
func (m *Machine) Run() Result {
	main := m.prog.Entry()
	m.frames = append(m.frames, frame{
		fn:     main,
		vals:   make([]uint64, main.NumRegs),
		widths: make([]uint8, main.NumRegs),
	})
	blk := main.Entry()
	idx := 0
	m.enterBlock(blk)

	for {
		if m.steps >= m.opts.MaxSteps {
			return Result{Reason: StopSteps, Steps: m.steps}
		}
		in := &blk.Instrs[idx]
		m.steps++

		f := &m.frames[len(m.frames)-1]
		switch in.Op {
		case ir.OpConst:
			m.set(f, in.Dst, in.Imm, in.Width)
		case ir.OpBin:
			a := m.get(f, in.A, in.Width)
			b := m.get(f, in.B, in.Width)
			if isDiv(in.Bin) && b == 0 {
				return m.fault(FaultDivByZero, blk, idx, "divisor is zero")
			}
			m.set(f, in.Dst, evalBin(in.Bin, a, b, uint(in.Width)), in.Width)
		case ir.OpCmp:
			a := m.get(f, in.A, in.Width)
			b := m.get(f, in.B, in.Width)
			m.set(f, in.Dst, b2u(evalPred(in.Pred, a, b, uint(in.Width))), 1)
		case ir.OpNot:
			m.set(f, in.Dst, ^m.get(f, in.A, in.Width), in.Width)
		case ir.OpMov:
			m.set(f, in.Dst, m.get(f, in.A, in.Width), in.Width)
		case ir.OpZext:
			m.set(f, in.Dst, f.vals[in.A], in.Width)
		case ir.OpSext:
			m.set(f, in.Dst, sext(f.vals[in.A], uint(f.widths[in.A])), in.Width)
		case ir.OpTrunc:
			m.set(f, in.Dst, f.vals[in.A], in.Width)
		case ir.OpSelect:
			if f.vals[in.A]&1 == 1 {
				m.set(f, in.Dst, m.get(f, in.B, in.Width), in.Width)
			} else {
				m.set(f, in.Dst, m.get(f, in.C, in.Width), in.Width)
			}
		case ir.OpAlloca:
			id := uint32(len(m.objs))
			m.objs = append(m.objs, make([]byte, in.Imm))
			m.set(f, in.Dst, ir.MakeObjRef(id, 0), 64)
		case ir.OpInput:
			m.set(f, in.Dst, ir.MakeObjRef(InputObjID, 0), 64)
		case ir.OpInputLen:
			m.set(f, in.Dst, uint64(len(m.input)), in.Width)
		case ir.OpLoad:
			v, flt := m.load(f.vals[in.A]+in.Imm, int(in.Width)/8, blk, idx)
			if flt != nil {
				return m.faultF(flt)
			}
			m.set(f, in.Dst, v, in.Width)
		case ir.OpStore:
			if flt := m.store(f.vals[in.A]+in.Imm, m.get(f, in.B, in.Width), int(in.Width)/8, blk, idx); flt != nil {
				return m.faultF(flt)
			}
		case ir.OpCall:
			callee := m.prog.Func(in.Callee)
			nf := frame{
				fn:       callee,
				vals:     make([]uint64, callee.NumRegs),
				widths:   make([]uint8, callee.NumRegs),
				retDst:   in.Dst,
				retBlock: blk,
				retIndex: idx + 1,
			}
			for i, a := range in.Args {
				nf.vals[i] = f.vals[a]
				nf.widths[i] = f.widths[a]
			}
			m.frames = append(m.frames, nf)
			blk = callee.Entry()
			idx = 0
			m.enterBlock(blk)
			continue
		case ir.OpRet:
			var rv uint64
			var rw uint8 = 64
			if in.A != ir.NoReg {
				rv = f.vals[in.A]
				rw = f.widths[in.A]
			}
			ret := *f
			m.frames = m.frames[:len(m.frames)-1]
			if len(m.frames) == 0 {
				return Result{Reason: StopExited, Steps: m.steps}
			}
			caller := &m.frames[len(m.frames)-1]
			if ret.retDst != ir.NoReg {
				caller.vals[ret.retDst] = rv
				caller.widths[ret.retDst] = rw
			}
			blk = ret.retBlock
			idx = ret.retIndex
			continue
		case ir.OpBr:
			if f.vals[in.A]&1 == 1 {
				blk = in.Targets[0]
			} else {
				blk = in.Targets[1]
			}
			idx = 0
			m.enterBlock(blk)
			continue
		case ir.OpJmp:
			blk = in.Targets[0]
			idx = 0
			m.enterBlock(blk)
			continue
		case ir.OpSwitch:
			v := f.vals[in.A]
			target := in.Targets[len(in.Vals)]
			for i, val := range in.Vals {
				if v == val {
					target = in.Targets[i]
					break
				}
			}
			blk = target
			idx = 0
			m.enterBlock(blk)
			continue
		case ir.OpAssert:
			if f.vals[in.A]&1 != 1 {
				return m.fault(FaultAssert, blk, idx, in.Msg)
			}
		case ir.OpExit:
			return Result{Reason: StopExited, Steps: m.steps}
		case ir.OpPrint:
			// no-op
		default:
			panic(fmt.Sprintf("interp: unknown opcode %s", in.Op))
		}
		idx++
	}
}

// Objects returns a deep copy of the machine's memory: one byte slice
// per object id (index 0, the null slot, is nil). The snapshot is the
// reference "final memory" the differential oracle tests compare against
// symbolic replay.
func (m *Machine) Objects() [][]byte {
	out := make([][]byte, len(m.objs))
	for id, o := range m.objs {
		if o == nil {
			continue
		}
		cp := make([]byte, len(o))
		copy(cp, o)
		out[id] = cp
	}
	return out
}

// Steps returns the number of instructions executed so far.
func (m *Machine) Steps() int64 { return m.steps }

func (m *Machine) enterBlock(b *ir.Block) {
	if m.opts.Tracer != nil {
		m.opts.Tracer(b, m.steps)
	}
}

func (m *Machine) set(f *frame, r ir.Reg, v uint64, w uint8) {
	f.vals[r] = v & maskW(uint(w))
	f.widths[r] = w
}

func (m *Machine) get(f *frame, r ir.Reg, w uint8) uint64 {
	return f.vals[r] & maskW(uint(w))
}

func (m *Machine) fault(k FaultKind, b *ir.Block, idx int, msg string) Result {
	return Result{
		Reason: StopFault,
		Fault:  &Fault{Kind: k, Block: b, Index: idx, Msg: msg},
		Steps:  m.steps,
	}
}

func (m *Machine) faultF(f *Fault) Result {
	return Result{Reason: StopFault, Fault: f, Steps: m.steps}
}

func (m *Machine) resolve(ptr uint64, size int, write bool, b *ir.Block, idx int) ([]byte, int, *Fault) {
	id := ir.ObjID(ptr)
	off := int(ir.ObjOff(ptr))
	if id == 0 || int(id) >= len(m.objs) || m.objs[id] == nil && id != InputObjID {
		return nil, 0, &Fault{Kind: FaultNullDeref, Block: b, Index: idx,
			Msg: fmt.Sprintf("pointer %#x does not reference an object", ptr)}
	}
	obj := m.objs[id]
	if off+size > len(obj) {
		k := FaultOOBRead
		if write {
			k = FaultOOBWrite
		}
		return nil, 0, &Fault{Kind: k, Block: b, Index: idx,
			Msg: fmt.Sprintf("access [%d,%d) of object %d (size %d)", off, off+size, id, len(obj))}
	}
	return obj, off, nil
}

func (m *Machine) load(ptr uint64, size int, b *ir.Block, idx int) (uint64, *Fault) {
	obj, off, flt := m.resolve(ptr, size, false, b, idx)
	if flt != nil {
		return 0, flt
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(obj[off+i])
	}
	return v, nil
}

func (m *Machine) store(ptr uint64, val uint64, size int, b *ir.Block, idx int) *Fault {
	obj, off, flt := m.resolve(ptr, size, true, b, idx)
	if flt != nil {
		return flt
	}
	for i := 0; i < size; i++ {
		obj[off+i] = byte(val >> (8 * i))
	}
	return nil
}

func isDiv(op ir.BinOp) bool {
	switch op {
	case ir.UDiv, ir.SDiv, ir.URem, ir.SRem:
		return true
	}
	return false
}

func evalBin(op ir.BinOp, a, b uint64, w uint) uint64 {
	switch op {
	case ir.Add:
		return (a + b) & maskW(w)
	case ir.Sub:
		return (a - b) & maskW(w)
	case ir.Mul:
		return (a * b) & maskW(w)
	case ir.UDiv:
		return a / b
	case ir.SDiv:
		return uint64(int64(sext(a, w))/int64(sext(b, w))) & maskW(w)
	case ir.URem:
		return a % b
	case ir.SRem:
		return uint64(int64(sext(a, w))%int64(sext(b, w))) & maskW(w)
	case ir.And:
		return a & b
	case ir.Or:
		return a | b
	case ir.Xor:
		return a ^ b
	case ir.Shl:
		if b >= uint64(w) {
			return 0
		}
		return (a << b) & maskW(w)
	case ir.LShr:
		if b >= uint64(w) {
			return 0
		}
		return a >> b
	case ir.AShr:
		if b >= uint64(w) {
			b = uint64(w) - 1
		}
		return uint64(int64(sext(a, w))>>b) & maskW(w)
	default:
		panic(fmt.Sprintf("interp: unknown binop %s", op))
	}
}

func evalPred(p ir.Pred, a, b uint64, w uint) bool {
	switch p {
	case ir.Eq:
		return a == b
	case ir.Ne:
		return a != b
	case ir.Ult:
		return a < b
	case ir.Ule:
		return a <= b
	case ir.Ugt:
		return a > b
	case ir.Uge:
		return a >= b
	case ir.Slt:
		return int64(sext(a, w)) < int64(sext(b, w))
	case ir.Sle:
		return int64(sext(a, w)) <= int64(sext(b, w))
	case ir.Sgt:
		return int64(sext(a, w)) > int64(sext(b, w))
	case ir.Sge:
		return int64(sext(a, w)) >= int64(sext(b, w))
	default:
		panic(fmt.Sprintf("interp: unknown pred %s", p))
	}
}

func maskW(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << w) - 1
}

func sext(v uint64, w uint) uint64 {
	if w == 0 || w >= 64 || v>>(w-1)&1 == 0 {
		return v
	}
	return v | ^maskW(w)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
