package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pbse/internal/expr"
	"pbse/internal/solver"
)

// TestSolverCacheCorruptionTolerated: a damaged verdict-cache file must
// never fail the campaign — bad headers discard the file, bad verdict
// bytes skip the record, and every event is counted in CacheCorruptions.
func TestSolverCacheCorruptionTolerated(t *testing.T) {
	seedCache := func(t *testing.T) string {
		t.Helper()
		dir := t.TempDir()
		st, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		c, err := st.SolverCache()
		if err != nil {
			t.Fatal(err)
		}
		c.Put(111, solver.Sat)
		c.Put(222, solver.Unsat)
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	reopen := func(t *testing.T, dir string) (*Store, *SolverCache) {
		t.Helper()
		st, err := Open(dir)
		if err != nil {
			t.Fatalf("corrupt cache failed Open: %v", err)
		}
		c, err := st.SolverCache()
		if err != nil {
			t.Fatalf("corrupt cache failed load: %v", err)
		}
		return st, c
	}

	t.Run("bad-header", func(t *testing.T) {
		dir := seedCache(t)
		path := filepath.Join(dir, "solvercache.bin")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[0] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, c := reopen(t, dir)
		if n := st.Stats().VerdictsLoaded; n != 0 {
			t.Errorf("bad header still loaded %d verdicts", n)
		}
		if n := st.Stats().CacheCorruptions; n != 1 {
			t.Errorf("CacheCorruptions = %d, want 1", n)
		}
		if _, ok := c.Get(111); ok {
			t.Error("verdict survived a discarded file")
		}
	})
	t.Run("bad-verdict-byte", func(t *testing.T) {
		dir := seedCache(t)
		path := filepath.Join(dir, "solvercache.bin")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Records follow the fixed-size header as 8-byte key + 1 verdict
		// byte: poison the first record's verdict.
		data[cacheHeaderSize+8] = 99
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, c := reopen(t, dir)
		if n := st.Stats().VerdictsLoaded; n != 1 {
			t.Errorf("loaded %d verdicts, want 1 (the undamaged record)", n)
		}
		if n := st.Stats().CacheCorruptions; n != 1 {
			t.Errorf("CacheCorruptions = %d, want 1", n)
		}
		// The undamaged record and a fresh flush both still work.
		c.Put(444, solver.Sat)
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		st2, c2 := reopen(t, dir)
		if n := st2.Stats().VerdictsLoaded; n != 2 {
			t.Errorf("after healing flush: loaded %d, want 2", n)
		}
		if _, ok := c2.Get(444); !ok {
			t.Error("healed cache lost the fresh verdict")
		}
	})
	t.Run("truncated-header", func(t *testing.T) {
		dir := seedCache(t)
		path := filepath.Join(dir, "solvercache.bin")
		if err := os.WriteFile(path, []byte{0x50, 0x42}, 0o644); err != nil {
			t.Fatal(err)
		}
		st, _ := reopen(t, dir)
		if n := st.Stats().CacheCorruptions; n != 1 {
			t.Errorf("CacheCorruptions = %d, want 1", n)
		}
	})
}

// TestCheckpointVersionGuard: a checkpoint from a future format version
// must be rejected with a clear error, never misparsed.
func TestCheckpointVersionGuard(t *testing.T) {
	ctx := expr.NewContext()
	arr := expr.NewArray("input", 64)
	ck := synthCheckpoint(ctx, arr, rand.New(rand.NewSource(3)))
	data, err := EncodeCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	// The version uvarint sits right after the 8-byte magic.
	if data[len(checkpointMagic)] != checkpointVersion {
		t.Fatalf("version byte = %d, want %d", data[len(checkpointMagic)], checkpointVersion)
	}
	data[len(checkpointMagic)] = checkpointVersion + 1
	if _, err := DecodeCheckpoint(data); err == nil {
		t.Fatal("future-version checkpoint accepted")
	}
}
