package store

import (
	"math/rand"
	"testing"

	"pbse/internal/expr"
)

// FuzzSnapshotRoundtrip drives the snapshot codec with randomly generated
// expression DAGs (via expr/gen.go) and asserts two invariants:
//
//  1. decode(encode(ck)) reproduces every expression structurally
//     (expr.StructEqual) with an identical structural fingerprint
//     (expr.Fingerprint) — the property the cross-run solver cache and
//     resume determinism depend on;
//  2. decoding corrupted bytes (the encoding with fuzz-chosen byte flips)
//     returns an error or a valid checkpoint, but never panics.
func FuzzSnapshotRoundtrip(f *testing.F) {
	f.Add(int64(1), uint64(3), []byte{})
	f.Add(int64(42), uint64(5), []byte{0x10, 0x00})
	f.Add(int64(-7), uint64(1), []byte{0xff, 0x80, 0x01})
	f.Fuzz(func(t *testing.T, seed int64, depth uint64, flip []byte) {
		d := int(depth%6) + 1
		rng := rand.New(rand.NewSource(seed))
		ctx := expr.NewContext()
		arr := expr.NewArray("input", 64)

		nStates := rng.Intn(3) + 1
		list := StateList{PhaseID: 0, Clock: rng.Int63n(1 << 20), RNGDraws: rng.Int63n(1 << 10), NextStateID: 64}
		for i := 0; i < nStates; i++ {
			list.States = append(list.States, synthSnap(ctx, arr, rng, i+1, rng.Intn(4)+1, d))
		}
		ck := &Checkpoint{
			Mode:     "roundrobin",
			NextTurn: rng.Int63n(64),
			Clock:    list.Clock,
			Sections: []StateSection{{Lists: []StateList{list}}},
		}

		data, err := EncodeCheckpoint(ck)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}

		// Invariant 1: lossless, fingerprint-stable roundtrip.
		cf, err := DecodeCheckpoint(data)
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		ctx2 := expr.NewContext()
		arr2 := expr.NewArray("input", 64)
		lists, err := cf.DecodeSection(0, ctx2, func(string, int) (*expr.Array, error) { return arr2, nil })
		if err != nil {
			t.Fatalf("section decode of own encoding: %v", err)
		}
		if len(lists) != 1 || len(lists[0].States) != nStates {
			t.Fatalf("shape changed: %d lists", len(lists))
		}
		memoA := make(map[*expr.Expr]uint64)
		memoB := make(map[*expr.Expr]uint64)
		check := func(a, b *expr.Expr) {
			if (a == nil) != (b == nil) {
				t.Fatal("nil-ness changed")
			}
			if a == nil {
				return
			}
			if !expr.StructEqual(a, b) {
				t.Fatalf("structurally unequal:\n got %v\nwant %v", a, b)
			}
			if expr.Fingerprint(a, memoA) != expr.Fingerprint(b, memoB) {
				t.Fatalf("fingerprint changed: %v", b)
			}
		}
		for si, s := range lists[0].States {
			o := list.States[si]
			for i := range o.PC {
				check(s.PC[i], o.PC[i])
			}
			for fi := range o.Frames {
				for ri := range o.Frames[fi].Regs {
					check(s.Frames[fi].Regs[ri], o.Frames[fi].Regs[ri])
				}
			}
			for oi := range o.Objs {
				for bi := range o.Objs[oi].Sym {
					check(s.Objs[oi].Sym[bi], o.Objs[oi].Sym[bi])
				}
			}
		}

		// Invariant 2: corrupted input must not panic the decoder. flip is
		// interpreted as (offset-delta, xor-mask) pairs over the encoding.
		if len(flip) >= 2 {
			mut := append([]byte(nil), data...)
			pos := 0
			for i := 0; i+1 < len(flip); i += 2 {
				pos = (pos + int(flip[i])) % len(mut)
				mut[pos] ^= flip[i+1] | 1
			}
			if cf, err := DecodeCheckpoint(mut); err == nil {
				for i := 0; i < cf.NumSections(); i++ {
					ctx3 := expr.NewContext()
					arr3 := expr.NewArray("input", 64)
					cf.DecodeSection(i, ctx3, func(string, int) (*expr.Array, error) { return arr3, nil })
				}
			}
		}
	})
}
