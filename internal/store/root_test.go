package store

import (
	"reflect"
	"testing"

	"pbse/internal/solver"
)

func TestValidID(t *testing.T) {
	for id, want := range map[string]bool{
		"c000001":   true,
		"alice-1.2": true,
		"A_b-C.9":   true,
		"":          false,
		".hidden":   false,
		"a/b":       false,
		"a b":       false,
		"über":      false,
		"x234567890123456789012345678901234567890123456789012345678901234":  true,  // 64
		"x2345678901234567890123456789012345678901234567890123456789012345": false, // 65
	} {
		if got := ValidID(id); got != want {
			t.Errorf("ValidID(%q) = %v, want %v", id, got, want)
		}
	}
}

// TestRootCampaignStores checks the root's two core promises: one
// *Store per campaign ID (idempotent, isolated directories), and one
// shared verdict cache wired into all of them.
func TestRootCampaignStores(t *testing.T) {
	root, err := OpenRoot(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a, err := root.Campaign("a")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := root.Campaign("a")
	if err != nil {
		t.Fatal(err)
	}
	if a != a2 {
		t.Error("repeated Campaign(a) returned a different *Store")
	}
	b, err := root.Campaign("b")
	if err != nil {
		t.Fatal(err)
	}
	if a == b || a.Dir() == b.Dir() {
		t.Error("campaigns a and b share a store")
	}
	if _, err := root.Campaign("../escape"); err == nil {
		t.Error("path-escaping campaign ID accepted")
	}

	ca, err := a.SolverCache()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.SolverCache()
	if err != nil {
		t.Fatal(err)
	}
	shared, err := root.SharedCache()
	if err != nil {
		t.Fatal(err)
	}
	if ca != cb || ca != shared {
		t.Error("campaign stores did not adopt the root's shared verdict cache")
	}

	ids, err := root.List()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b"}; !reflect.DeepEqual(ids, want) {
		t.Errorf("List() = %v, want %v", ids, want)
	}
}

// TestRootSharedCachePersistence checks a verdict flushed through one
// campaign's store lands in the root's shared log and is preloaded by
// the next root over the same directory.
func TestRootSharedCachePersistence(t *testing.T) {
	dir := t.TempDir()
	root, err := OpenRoot(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, err := root.Campaign("a")
	if err != nil {
		t.Fatal(err)
	}
	cache, err := a.SolverCache()
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(101, solver.Sat)
	cache.Put(202, solver.Unsat)
	if err := cache.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := root.SharedStats().VerdictsFlushed; got != 2 {
		t.Fatalf("VerdictsFlushed = %d through the shared store, want 2", got)
	}

	root2, err := OpenRoot(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := root2.Campaign("b")
	if err != nil {
		t.Fatal(err)
	}
	cache2, err := b.SolverCache()
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := cache2.Get(101); !ok || r != solver.Sat {
		t.Errorf("key 101 not preloaded from the shared log (ok=%v r=%v)", ok, r)
	}
	if r, ok := cache2.Get(202); !ok || r != solver.Unsat {
		t.Errorf("key 202 not preloaded from the shared log (ok=%v r=%v)", ok, r)
	}
	if got := root2.SharedStats().VerdictsLoaded; got != 2 {
		t.Errorf("VerdictsLoaded = %d, want 2", got)
	}
}
