package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Root manages a multi-campaign store tree — the persistence substrate
// of the campaign service (DESIGN.md §13). Each campaign gets its own
// fully independent Store under campaigns/<id>/ (checkpoints, manifest,
// seed, reproducer corpus), while all of them share ONE persistent
// solver-verdict cache under shared/ — a Sat/Unsat verdict is a fact
// about the query, not about any campaign, so verdicts learned by one
// tenant's campaign accelerate every other (and sharing cannot perturb
// trajectories: the solver takes shared Sat answers only for
// verdict-only queries and shared Unsat answers are semantic facts).
//
//	root/
//	  shared/solvercache.bin   verdict cache all campaigns read and feed
//	  campaigns/<id>/          one Store per campaign
//
// Root hands out at most one *Store per campaign ID, so every handle in
// the process observes the same store state and the shared cache is
// wired exactly once per campaign.
type Root struct {
	dir string

	mu     sync.Mutex
	shared *Store
	camps  map[string]*Store
}

// OpenRoot opens (creating if needed) the multi-campaign tree at dir.
func OpenRoot(dir string) (*Root, error) {
	if err := os.MkdirAll(filepath.Join(dir, "campaigns"), 0o755); err != nil {
		return nil, fmt.Errorf("store: root: %w", err)
	}
	shared, err := Open(filepath.Join(dir, "shared"))
	if err != nil {
		return nil, err
	}
	return &Root{dir: dir, shared: shared, camps: make(map[string]*Store)}, nil
}

// Dir returns the root directory.
func (r *Root) Dir() string { return r.dir }

// SharedCache returns the verdict cache every campaign of this root
// shares, loading the on-disk log on first call.
func (r *Root) SharedCache() (*SolverCache, error) {
	return r.shared.SolverCache()
}

// SharedStats returns the shared store's counters (verdicts loaded at
// open and flushed across all campaigns of this process).
func (r *Root) SharedStats() Stats { return r.shared.Stats() }

// SetSharedCacheMaxBytes bounds the shared verdict-cache log at n
// bytes (0 = unbounded): flushes past the budget evict the oldest
// records first (SolverCache.SetMaxBytes).
func (r *Root) SetSharedCacheMaxBytes(n int64) error {
	cache, err := r.shared.SolverCache()
	if err != nil {
		return err
	}
	cache.SetMaxBytes(n)
	return nil
}

// ValidID reports whether id is usable as a campaign directory name:
// non-empty, at most 64 bytes, and only [A-Za-z0-9._-] with no leading
// dot (keeps IDs path-safe and hides nothing in directory listings).
func ValidID(id string) bool {
	if id == "" || len(id) > 64 || id[0] == '.' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// Campaign opens (creating if needed) the store for one campaign,
// pre-wired to share the root's persistent verdict cache. Repeated
// calls return the same *Store.
func (r *Root) Campaign(id string) (*Store, error) {
	if !ValidID(id) {
		return nil, fmt.Errorf("store: root: invalid campaign id %q", id)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.camps[id]; ok {
		return st, nil
	}
	cache, err := r.shared.SolverCache()
	if err != nil {
		return nil, err
	}
	st, err := Open(filepath.Join(r.dir, "campaigns", id))
	if err != nil {
		return nil, err
	}
	st.AdoptSolverCache(cache)
	r.camps[id] = st
	return st, nil
}

// Forget drops the cached *Store for id. Used after a retention sweep
// removes the campaign's directory; a later Campaign(id) call would
// otherwise resurrect state for a tree that no longer exists.
func (r *Root) Forget(id string) {
	r.mu.Lock()
	delete(r.camps, id)
	r.mu.Unlock()
}

// CampaignDir returns the directory a campaign's store lives in (without
// opening it).
func (r *Root) CampaignDir(id string) string {
	return filepath.Join(r.dir, "campaigns", id)
}

// List returns the IDs of every campaign directory under the root,
// sorted — the crash-recovery inventory a restarting daemon walks.
func (r *Root) List() ([]string, error) {
	des, err := os.ReadDir(filepath.Join(r.dir, "campaigns"))
	if err != nil {
		return nil, fmt.Errorf("store: root: %w", err)
	}
	var out []string
	for _, de := range des {
		if de.IsDir() && ValidID(de.Name()) {
			out = append(out, de.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}
