package store

import (
	"fmt"
	"strings"
	"testing"
)

// Write fencing (DESIGN.md §14): with a fence installed, checkpoint
// and manifest writes consult it immediately before the file write and
// fail — counted — when it rejects.

func TestStoreFenceRejectsWrites(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := &Manifest{Label: "t", Program: "p", SeedSHA256: SeedSig(nil), Status: StatusRunning}
	if err := st.WriteManifest(m); err != nil {
		t.Fatalf("unfenced manifest write failed: %v", err)
	}

	allow := true
	st.SetFence(func() error {
		if allow {
			return nil
		}
		return fmt.Errorf("stale owner")
	})
	if err := st.WriteManifest(m); err != nil {
		t.Fatalf("fence-approved manifest write failed: %v", err)
	}
	ck := &Checkpoint{}
	if err := st.WriteCheckpoint(ck); err != nil {
		t.Fatalf("fence-approved checkpoint write failed: %v", err)
	}

	allow = false
	if err := st.WriteManifest(m); err == nil {
		t.Fatal("fenced manifest write succeeded for a stale owner")
	} else if !strings.Contains(err.Error(), "fenced") {
		t.Errorf("fence error %q does not say fenced", err)
	}
	if err := st.WriteCheckpoint(ck); err == nil {
		t.Fatal("fenced checkpoint write succeeded for a stale owner")
	}
	if got := st.Stats().FenceRejections; got != 2 {
		t.Errorf("FenceRejections = %d, want 2", got)
	}

	// Clearing the fence restores writes; the earlier fenced write did
	// not corrupt the manifest.
	st.SetFence(nil)
	if err := st.WriteManifest(m); err != nil {
		t.Fatalf("write after clearing the fence: %v", err)
	}
	back, err := st.ReadManifest()
	if err != nil || back == nil || back.Label != "t" {
		t.Fatalf("manifest after fencing churn: %+v, %v", back, err)
	}
}

// TestSolverCacheSizeBound: a byte budget evicts the oldest records at
// flush, the file never exceeds the bound, newly learned verdicts
// survive preferentially, and a reload sees only the retained tail.
func TestSolverCacheSizeBound(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := st.SolverCache()
	if err != nil {
		t.Fatal(err)
	}
	// 100 old records, unbounded flush.
	for i := 0; i < 100; i++ {
		cache.Put(uint64(i+1), 1) // solver.Sat == 1
	}
	if err := cache.Flush(); err != nil {
		t.Fatal(err)
	}
	full := st.Stats().CacheBytes
	if full != cacheHeaderSize+100*cacheRecordSize {
		t.Fatalf("full log %d bytes", full)
	}

	// Bound to ~40 records, add 10 new ones: flush must evict the
	// oldest 70 and keep the newest 40 (old tail + all 10 new).
	const keepRecs = 40
	cache.SetMaxBytes(cacheHeaderSize + keepRecs*cacheRecordSize)
	for i := 100; i < 110; i++ {
		cache.Put(uint64(i+1), 1)
	}
	if err := cache.Flush(); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.CacheBytes > cacheHeaderSize+keepRecs*cacheRecordSize {
		t.Errorf("bounded log is %d bytes, budget %d", stats.CacheBytes, cacheHeaderSize+keepRecs*cacheRecordSize)
	}
	if stats.VerdictsEvicted != 70 {
		t.Errorf("VerdictsEvicted = %d, want 70", stats.VerdictsEvicted)
	}

	// Reload in a fresh store: only the retained window comes back,
	// and it is the *newest* records.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache2, err := st2.SolverCache()
	if err != nil {
		t.Fatal(err)
	}
	if loaded := st2.Stats().VerdictsLoaded; loaded != keepRecs {
		t.Errorf("reload got %d verdicts, want %d", loaded, keepRecs)
	}
	if _, ok := cache2.Get(1); ok {
		t.Error("oldest verdict survived eviction")
	}
	for _, key := range []uint64{71, 105, 110} {
		if _, ok := cache2.Get(key); !ok {
			t.Errorf("retained verdict %d missing after reload", key)
		}
	}
}

// TestSolverCacheBoundNoop: a generous budget evicts nothing and the
// bound is invisible.
func TestSolverCacheBoundNoop(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache, err := st.SolverCache()
	if err != nil {
		t.Fatal(err)
	}
	cache.SetMaxBytes(1 << 20)
	for i := 0; i < 50; i++ {
		cache.Put(uint64(i+1), 2) // solver.Unsat == 2
	}
	if err := cache.Flush(); err != nil {
		t.Fatal(err)
	}
	if st.Stats().VerdictsEvicted != 0 {
		t.Errorf("generous budget evicted %d", st.Stats().VerdictsEvicted)
	}
	if st.Stats().VerdictsFlushed != 50 {
		t.Errorf("flushed %d, want 50", st.Stats().VerdictsFlushed)
	}
}
