package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pbse/internal/bugs"
	"pbse/internal/concolic"
	"pbse/internal/expr"
	"pbse/internal/interp"
	"pbse/internal/phase"
	"pbse/internal/solver"
	"pbse/internal/supervise"
	"pbse/internal/symex"
	"pbse/internal/targets"
)

// synthSnap builds a StateSnap whose expressions come from the random
// generators in expr/gen.go, rooted in ctx over arr.
func synthSnap(ctx *expr.Context, arr *expr.Array, rng *rand.Rand, id, n, depth int) *symex.StateSnap {
	s := &symex.StateSnap{
		ID:              id,
		NextObjID:       7,
		BlockID:         3,
		Idx:             1,
		Depth:           n,
		ForkTime:        int64(100 * id),
		LastNewCover:    int64(50 * id),
		StepsExecuted:   int64(n),
		SeedForkBlockID: 2,
		SeedForkIdx:     0,
		NeedsValidation: id%2 == 0,
	}
	for i := 0; i < n; i++ {
		s.PC = append(s.PC, expr.RandBoolExpr(ctx, rng, arr, depth))
	}
	regs := make([]*expr.Expr, 4)
	regs[0] = expr.RandExpr(ctx, rng, arr, 64, depth)
	regs[2] = expr.RandExpr(ctx, rng, arr, 32, depth)
	s.Frames = []symex.FrameSnap{{Fn: "main", Regs: regs, RetDst: -1, RetBlockID: -1, RetIndex: 0}}
	obj := symex.ObjSnap{ID: 1, Size: 4, Conc: []byte{1, 2, 3, 4}}
	obj.Sym = make([]*expr.Expr, 4)
	obj.Sym[1] = expr.RandExpr(ctx, rng, arr, 8, depth)
	s.Objs = []symex.ObjSnap{obj}
	return s
}

func synthCheckpoint(ctx *expr.Context, arr *expr.Array, rng *rand.Rand) *Checkpoint {
	ck := &Checkpoint{
		Mode:        "roundrobin",
		NextTurn:    12,
		RoundsDone:  3,
		RNGDraws:    991,
		NextStateID: 40,
		DeadClock:   123,
		Clock:       55_000,
		CTime:       10_000,
		PTimeNanos:  777,
		ConStart:    5,
		ConSteps:    9_995,
		ConExited:   true,
		BBVs: []concolic.BBV{
			{Index: 0, Time: 0, Counts: map[int]int{3: 2, 1: 9}, Coverage: 0.25},
			{Index: 1, Time: 4096, Counts: map[int]int{2: 1}, Coverage: 0.5},
		},
		Division: &phase.Division{
			K:      2,
			Assign: []int{0, 1},
			Phases: []phase.Phase{
				{ID: 0, BBVs: []int{0}, FirstTime: 0, Trap: false, LongestRun: 1, InputLoopFrac: 0.75},
				{ID: 1, BBVs: []int{1}, FirstTime: 4096, Trap: true, LongestRun: 2, InputLoopFrac: 0},
			},
			NumTrap: 1,
		},
		Covered: []int{0, 1, 3, 8},
		Series:  []CoveragePoint{{Time: 100, Covered: 2}, {Time: 900, Covered: 4}},
		Bugs: []*bugs.Report{
			{Kind: bugs.OOBRead, Func: "f", Block: "bb2", BlockID: 2, Index: 1, Msg: "oob", Input: []byte{9, 8}, Time: 321, Phase: 1},
			{Kind: bugs.DivByZero, Func: "g", Block: "bb5", BlockID: 5, Index: 0, Msg: "div", Time: 77, Phase: -1},
		},
		Quarantine: []symex.QuarantineRecord{{StateID: 4, Func: "f", Block: "bb1", Panic: "boom", Stack: "trace"}},
		CarryGov:   symex.GovStats{SolverUnknowns: 1, SolverRetries: 2, Concretizations: 3, Quarantines: 4, Evictions: 5},
		CarrySolver: solver.Stats{
			Queries: 10, CacheHits: 4, SharedHits: 1, CandidateSat: 2,
			IntervalFast: 1, SATRuns: 2, Conflicts: 30, Unknowns: 1, BudgetExhausted: 1,
			StaticPrunes: 6, PrecheckDeadlines: 2, // ride the v2 extension block
		},
		CarrySup: supervise.SupStats{
			Crashes: 1, Hangs: 2, WatchdogTrips: 3, Restarts: 4, BackoffSkips: 5,
			DegradedRounds: 6, RequeuedStates: 7, QuarantinedIslands: 8,
			QuarantinedStates: 9, FaultCheckpoints: 10, StoreFaults: 11, ProcessRestarts: 12,
		},
		CarryWorkers: []WorkerStat{{Worker: 0, Turns: 5, Steps: 100}, {Worker: 1, Turns: 4, Steps: 80}},
		PhaseStats: []PhaseStat{
			{ID: 0, Trap: false, SeedStates: 3, Steps: 50, Turns: 2, NewBlocks: 4, Bugs: 1, Quarantines: 0},
			{ID: 1, Trap: true, SeedStates: 1, Steps: 20, Turns: 2, NewBlocks: 0, Bugs: 1, Quarantines: 1},
		},
		LiveIDs: []int{1, 0},
		Sections: []StateSection{{
			Lists: []StateList{
				{PhaseID: 0, Clock: 123, RNGDraws: 45, NextStateID: 17,
					States: []*symex.StateSnap{synthSnap(ctx, arr, rng, 2, 3, 4), synthSnap(ctx, arr, rng, 5, 1, 3)}},
				{PhaseID: 1, Clock: 99, RNGDraws: 7, NextStateID: 30,
					States: []*symex.StateSnap{synthSnap(ctx, arr, rng, 9, 2, 5)}},
			},
		}},
	}
	return ck
}

func TestCheckpointRoundtrip(t *testing.T) {
	ctx := expr.NewContext()
	arr := expr.NewArray("input", 64)
	rng := rand.New(rand.NewSource(1))
	ck := synthCheckpoint(ctx, arr, rng)

	data, err := EncodeCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	got := cf.Common()

	// Common fields must survive exactly (sections compared separately).
	want := *ck
	want.Sections = nil
	gotCopy := *got
	gotCopy.Sections = nil
	if !reflect.DeepEqual(&want, &gotCopy) {
		t.Fatalf("common fields changed:\n got %+v\nwant %+v", gotCopy, want)
	}

	// Decode the section into a fresh context: expressions must be
	// structurally equal and fingerprint-identical.
	ctx2 := expr.NewContext()
	arr2 := expr.NewArray("input", 64)
	resolve := func(name string, size int) (*expr.Array, error) { return arr2, nil }
	lists, err := cf.DecodeSection(0, ctx2, resolve)
	if err != nil {
		t.Fatal(err)
	}
	if len(lists) != len(ck.Sections[0].Lists) {
		t.Fatalf("got %d lists, want %d", len(lists), len(ck.Sections[0].Lists))
	}
	memoA := make(map[*expr.Expr]uint64)
	memoB := make(map[*expr.Expr]uint64)
	for li, l := range lists {
		orig := ck.Sections[0].Lists[li]
		if l.PhaseID != orig.PhaseID || l.Clock != orig.Clock || l.RNGDraws != orig.RNGDraws || l.NextStateID != orig.NextStateID {
			t.Fatalf("list %d header mismatch: %+v vs %+v", li, l, orig)
		}
		if len(l.States) != len(orig.States) {
			t.Fatalf("list %d: %d states, want %d", li, len(l.States), len(orig.States))
		}
		for si, s := range l.States {
			o := orig.States[si]
			checkExprs := func(what string, a, b []*expr.Expr) {
				if len(a) != len(b) {
					t.Fatalf("list %d state %d %s: len %d vs %d", li, si, what, len(a), len(b))
				}
				for i := range a {
					if (a[i] == nil) != (b[i] == nil) {
						t.Fatalf("list %d state %d %s[%d]: nil mismatch", li, si, what, i)
					}
					if a[i] == nil {
						continue
					}
					if !expr.StructEqual(a[i], b[i]) {
						t.Fatalf("list %d state %d %s[%d]: structurally unequal\n got %v\nwant %v", li, si, what, i, a[i], b[i])
					}
					if expr.Fingerprint(a[i], memoA) != expr.Fingerprint(b[i], memoB) {
						t.Fatalf("list %d state %d %s[%d]: fingerprint changed", li, si, what, i)
					}
				}
			}
			checkExprs("pc", s.PC, o.PC)
			if len(s.Frames) != len(o.Frames) {
				t.Fatalf("frame count mismatch")
			}
			for fi := range s.Frames {
				if s.Frames[fi].Fn != o.Frames[fi].Fn || s.Frames[fi].RetDst != o.Frames[fi].RetDst ||
					s.Frames[fi].RetBlockID != o.Frames[fi].RetBlockID || s.Frames[fi].RetIndex != o.Frames[fi].RetIndex {
					t.Fatalf("frame %d header mismatch", fi)
				}
				checkExprs("regs", s.Frames[fi].Regs, o.Frames[fi].Regs)
			}
			if len(s.Objs) != len(o.Objs) {
				t.Fatalf("obj count mismatch")
			}
			for oi := range s.Objs {
				if s.Objs[oi].ID != o.Objs[oi].ID || s.Objs[oi].Size != o.Objs[oi].Size ||
					!reflect.DeepEqual(s.Objs[oi].Conc, o.Objs[oi].Conc) {
					t.Fatalf("obj %d mismatch", oi)
				}
				checkExprs("sym", s.Objs[oi].Sym, o.Objs[oi].Sym)
			}
			if s.ID != o.ID || s.BlockID != o.BlockID || s.Idx != o.Idx || s.Depth != o.Depth ||
				s.ForkTime != o.ForkTime || s.NeedsValidation != o.NeedsValidation ||
				s.Terminated != o.Terminated || s.Evicted != o.Evicted {
				t.Fatalf("state scalar mismatch: %+v vs %+v", s, o)
			}
		}
	}

	// Determinism: encoding the same checkpoint twice yields equal bytes.
	data2, err := EncodeCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(data, data2) {
		t.Error("encoding is not deterministic")
	}
}

func TestCheckpointDecodeCorrupt(t *testing.T) {
	ctx := expr.NewContext()
	arr := expr.NewArray("input", 64)
	ck := synthCheckpoint(ctx, arr, rand.New(rand.NewSource(2)))
	data, err := EncodeCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every prefix must error, never panic.
	for n := 0; n < len(data); n += 17 {
		if _, err := DecodeCheckpoint(data[:n]); err == nil {
			// A prefix that still parses the common part is fine only if
			// section decode then fails or the data happened to be whole.
			continue
		}
	}
	if _, err := DecodeCheckpoint([]byte("not a checkpoint")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSolverCachePersistence(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := st.SolverCache()
	if err != nil {
		t.Fatal(err)
	}
	c.Put(111, solver.Sat)
	c.Put(222, solver.Unsat)
	c.Put(333, solver.Unknown) // must not persist
	c.Put(111, solver.Sat)     // duplicate: one record only
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().VerdictsFlushed; got != 2 {
		t.Errorf("flushed %d records, want 2", got)
	}

	// Reopen as a new process would.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := st2.SolverCache()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Stats().VerdictsLoaded != 2 {
		t.Errorf("loaded %d verdicts, want 2", st2.Stats().VerdictsLoaded)
	}
	if r, ok := c2.Get(111); !ok || r != solver.Sat {
		t.Errorf("key 111 = %v,%v want Sat", r, ok)
	}
	if r, ok := c2.Get(222); !ok || r != solver.Unsat {
		t.Errorf("key 222 = %v,%v want Unsat", r, ok)
	}
	if _, ok := c2.Get(333); ok {
		t.Error("Unknown verdict was persisted")
	}

	// A torn tail (partial record from a crash mid-append) is ignored.
	f, err := os.OpenFile(filepath.Join(dir, "solvercache.bin"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := st3.SolverCache()
	if err != nil {
		t.Fatal(err)
	}
	if st3.Stats().VerdictsLoaded != 2 {
		t.Errorf("after torn tail: loaded %d verdicts, want 2", st3.Stats().VerdictsLoaded)
	}
	if r, ok := c3.Get(222); !ok || r != solver.Unsat {
		t.Error("torn tail corrupted earlier records")
	}
}

func TestManifestRoundtrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if m, err := st.ReadManifest(); err != nil || m != nil {
		t.Fatalf("empty store: manifest = %v, %v", m, err)
	}
	m := &Manifest{Label: "readelf", Program: "minielf/blocks=10/instrs=100",
		SeedSHA256: "ab", InputSize: 576, OptionsSig: "budget=1", Status: StatusRunning, Rounds: 2, Covered: 5, Bugs: 1}
	if err := st.WriteManifest(m); err != nil {
		t.Fatal(err)
	}
	got, err := st.ReadManifest()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("manifest changed: %+v vs %+v", got, m)
	}
	m.Status = StatusComplete
	if err := st.WriteManifest(m); err != nil {
		t.Fatal(err)
	}
	got, _ = st.ReadManifest()
	if got.Status != StatusComplete {
		t.Error("manifest update lost")
	}
}

func TestCorpusDedupAndReplay(t *testing.T) {
	tgt, err := targets.ByDriver("readelf")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := tgt.Build()
	if err != nil {
		t.Fatal(err)
	}
	seed := tgt.GenBuggySeed(rand.New(rand.NewSource(3)))
	res := interp.New(prog, seed, interp.Options{MaxSteps: 5_000_000}).Run()
	if res.Reason != interp.StopFault {
		t.Fatalf("buggy seed did not fault: %+v", res)
	}
	f := res.Fault
	kindFor := map[interp.FaultKind]bugs.Kind{
		interp.FaultOOBRead: bugs.OOBRead, interp.FaultOOBWrite: bugs.OOBWrite,
		interp.FaultNullDeref: bugs.NullDeref, interp.FaultDivByZero: bugs.DivByZero,
		interp.FaultAssert: bugs.AssertFail,
	}
	rep := &bugs.Report{
		Kind: kindFor[f.Kind], Func: f.Block.Fn.Name, Block: f.Block.Name,
		BlockID: f.Block.ID, Index: f.Index, Msg: f.Msg, Input: seed, Time: res.Steps,
	}

	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	added, err := st.AddReproducer(rep)
	if err != nil || !added {
		t.Fatalf("first add = %v, %v", added, err)
	}
	added, err = st.AddReproducer(rep)
	if err != nil || added {
		t.Fatalf("duplicate add = %v, %v (want dedup)", added, err)
	}
	if _, err := st.AddReproducer(&bugs.Report{Kind: bugs.OOBRead}); err != nil {
		t.Fatalf("input-less report: %v", err)
	}
	if n := st.Stats().CorpusAdded; n != 1 {
		t.Errorf("corpus added %d, want 1", n)
	}

	entries, err := st.Corpus()
	if err != nil || len(entries) != 1 {
		t.Fatalf("corpus = %d entries, %v", len(entries), err)
	}
	entry, input, err := st.ReadReproducer(rep.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(input, seed) {
		t.Fatal("stored input differs from witness")
	}
	ok, msg, err := Replay(prog, entry, input, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("stored reproducer does not replay: %s", msg)
	}
	// Replaying against a wrong site must fail, not error.
	bad := *entry
	bad.Index++
	ok, _, err = Replay(prog, &bad, input, 0)
	if err != nil || ok {
		t.Fatalf("wrong-site replay = %v, %v (want false, nil)", ok, err)
	}
}
