package store

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"sync"

	"pbse/internal/solver"
)

// SolverCache is the cross-run persistent tier of the solver verdict
// cache. In memory it is an ordinary solver.ShardedCache (so it plugs
// into solver.Options.Shared unchanged, including for concurrent phase
// workers); on disk it is a log of (fingerprint, verdict) records
// rewritten at round barriers.
//
// Only Sat/Unsat ever reach disk — Unknown means "gave up under this
// run's budgets", which is not a fact about the query. Keys are
// structural fingerprints, valid across expr.Contexts and therefore
// across runs; a warm cache turns a repeated campaign's SAT runs into
// shared-cache hits (measured by TestCrossRunSolverCacheWarm).
//
// The log format is a 16-byte header ("PBSESLVC" + version, padded) then
// 9-byte records: 8-byte little-endian key + 1 verdict byte (1=Sat,
// 2=Unsat). Flush writes the whole log tmp+fsync+rename (with a parent
// directory fsync), so a crash mid-flush leaves either the old or the
// new file — never a truncated one. Rewriting costs O(total records)
// per flush instead of O(new), a fine trade at the log's size (9 bytes
// per distinct query ever decided). Corruption found at load — a
// foreign header, a torn tail from a pre-rewrite append, a bad verdict
// byte — is discarded and logged, never fatal: the cache is an
// accelerator, and the next flush replaces the damaged file wholesale.
type SolverCache struct {
	mem  *solver.ShardedCache
	st   *Store
	path string

	mu       sync.Mutex
	clean    []byte // validated records already on disk
	dirty    []byte // encoded records not yet flushed
	maxBytes int64  // on-disk log byte budget (0 = unbounded)
}

var _ solver.VerdictCache = (*SolverCache)(nil)

const (
	cacheMagic      = "PBSESLVC"
	cacheVersion    = 1
	cacheHeaderSize = 16
	cacheRecordSize = 9
)

// SolverCache returns the store's persistent verdict cache, loading the
// on-disk log on first call.
func (s *Store) SolverCache() (*SolverCache, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache != nil {
		return s.cache, nil
	}
	c := &SolverCache{mem: solver.NewShardedCache(), st: s, path: s.cachePath()}
	n, corrupt, err := c.load()
	if err != nil {
		return nil, err
	}
	s.stats.VerdictsLoaded = n
	s.stats.CacheCorruptions += corrupt
	s.cache = c
	return c, nil
}

// load reads and validates the on-disk log into the memory tier,
// returning the verdicts loaded and the corruption events discarded. A
// damaged file never fails the campaign: a bad header discards the file
// (logged), a bad record is skipped (fixed-size framing survives), and
// a torn tail is dropped — all healed by the next flush's full rewrite.
func (c *SolverCache) load() (loaded, corrupt int64, err error) {
	data, err := os.ReadFile(c.path)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("store: solver cache: %w", err)
	}
	if len(data) < cacheHeaderSize {
		if len(data) > 0 {
			log.Printf("store: solver cache %s: torn header (%d bytes); discarding", c.path, len(data))
			corrupt++
		}
		return 0, corrupt, nil
	}
	if string(data[:len(cacheMagic)]) != cacheMagic || data[len(cacheMagic)] != cacheVersion {
		log.Printf("store: solver cache %s: bad header; discarding %d bytes", c.path, len(data))
		return 0, corrupt + 1, nil
	}
	recs := data[cacheHeaderSize:]
	for len(recs) >= cacheRecordSize {
		key := binary.LittleEndian.Uint64(recs)
		var r solver.Result
		switch recs[8] {
		case 1:
			r = solver.Sat
		case 2:
			r = solver.Unsat
		default:
			log.Printf("store: solver cache %s: corrupt verdict byte %d; skipping record", c.path, recs[8])
			corrupt++
			recs = recs[cacheRecordSize:]
			continue
		}
		c.mem.Put(key, r)
		c.clean = append(c.clean, recs[:cacheRecordSize]...)
		loaded++
		recs = recs[cacheRecordSize:]
	}
	if len(recs) > 0 {
		log.Printf("store: solver cache %s: torn tail (%d bytes); discarding", c.path, len(recs))
		corrupt++
	}
	return loaded, corrupt, nil
}

// Mem returns the in-memory tier, for wiring into schedulers that want
// the *solver.ShardedCache concrete type.
func (c *SolverCache) Mem() *solver.ShardedCache { return c.mem }

// MemStats returns the in-memory tier's traffic counters.
func (c *SolverCache) MemStats() solver.ShardStats { return c.mem.Stats() }

// Get looks up a verdict in the in-memory tier (which holds everything
// loaded from disk plus this run's inserts).
func (c *SolverCache) Get(key uint64) (solver.Result, bool) {
	return c.mem.Get(key)
}

// Put records a Sat/Unsat verdict in memory and queues it for the next
// flush. Verdicts already present (typically: loaded from a prior run)
// are not re-queued, keeping the log roughly one record per distinct
// query across runs.
func (c *SolverCache) Put(key uint64, r solver.Result) {
	if r == solver.Unknown {
		return
	}
	c.mu.Lock()
	if _, ok := c.mem.Peek(key); !ok {
		var rec [cacheRecordSize]byte
		binary.LittleEndian.PutUint64(rec[:], key)
		if r == solver.Sat {
			rec[8] = 1
		} else {
			rec[8] = 2
		}
		c.dirty = append(c.dirty, rec[:]...)
	}
	c.mu.Unlock()
	c.mem.Put(key, r)
}

// SetMaxBytes bounds the on-disk log at maxBytes (0 = unbounded,
// the default). When a flush would exceed the budget, the oldest
// records are evicted first — clean records loaded from prior runs
// before anything learned this run — under the assumption that a
// verdict untouched for generations is the least likely to recur.
// Eviction compacts only the log: the in-memory tier keeps every
// verdict for this process's lifetime, and the next process simply
// starts without the evicted tail. Counted in Stats.VerdictsEvicted.
func (c *SolverCache) SetMaxBytes(maxBytes int64) {
	c.mu.Lock()
	c.maxBytes = maxBytes
	c.mu.Unlock()
}

// Flush rewrites the on-disk log (header + every validated record +
// queued verdicts) tmp+fsync+rename with a parent-dir fsync, so a crash
// at any point leaves a complete old or complete new file. A no-op when
// nothing is queued. With a byte budget set (SetMaxBytes), the log is
// compacted oldest-first before the rewrite.
func (c *SolverCache) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.dirty) == 0 {
		return nil
	}
	if err := c.st.injectIO("solver cache"); err != nil {
		return err
	}
	var evicted int64
	if c.maxBytes > 0 {
		budget := c.maxBytes - cacheHeaderSize
		if budget < 0 {
			budget = 0
		}
		keep := (budget / cacheRecordSize) * cacheRecordSize
		total := int64(len(c.clean) + len(c.dirty))
		if over := total - keep; over > 0 {
			// Oldest-first: the front of clean predates everything in
			// dirty, and dirty's own front is its oldest insert. Both
			// buffers hold whole records, so record-aligned drops slice
			// cleanly.
			drop := (over + cacheRecordSize - 1) / cacheRecordSize * cacheRecordSize
			if drop > total {
				drop = total
			}
			evicted = drop / cacheRecordSize
			if int64(len(c.clean)) >= drop {
				c.clean = c.clean[drop:]
			} else {
				drop -= int64(len(c.clean))
				c.clean = nil
				c.dirty = c.dirty[drop:]
			}
		}
	}
	buf := make([]byte, cacheHeaderSize, cacheHeaderSize+len(c.clean)+len(c.dirty))
	copy(buf, cacheMagic)
	buf[len(cacheMagic)] = cacheVersion
	buf = append(buf, c.clean...)
	buf = append(buf, c.dirty...)
	if err := writeFileAtomic(c.path, buf); err != nil {
		return fmt.Errorf("store: solver cache: %w", err)
	}
	flushed := int64(len(c.dirty) / cacheRecordSize)
	c.clean = append(c.clean, c.dirty...)
	c.dirty = nil
	c.st.mu.Lock()
	c.st.stats.VerdictsFlushed += flushed
	c.st.stats.VerdictsEvicted += evicted
	c.st.stats.CacheBytes = int64(len(buf))
	c.st.mu.Unlock()
	return nil
}
