package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"

	"pbse/internal/solver"
)

// SolverCache is the cross-run persistent tier of the solver verdict
// cache. In memory it is an ordinary solver.ShardedCache (so it plugs
// into solver.Options.Shared unchanged, including for concurrent phase
// workers); on disk it is an append-only log of (fingerprint, verdict)
// records flushed at round barriers.
//
// Only Sat/Unsat ever reach disk — Unknown means "gave up under this
// run's budgets", which is not a fact about the query. Keys are
// structural fingerprints, valid across expr.Contexts and therefore
// across runs; a warm cache turns a repeated campaign's SAT runs into
// shared-cache hits (measured by TestCrossRunSolverCacheWarm).
//
// The log format is a 16-byte header ("PBSESLVC" + version, padded) then
// 9-byte records: 8-byte little-endian key + 1 verdict byte (1=Sat,
// 2=Unsat). A torn tail from a crash mid-append is ignored on load, and
// duplicate records are harmless, so appending needs no locking against
// past runs — only against concurrent Put calls within this one.
type SolverCache struct {
	mem  *solver.ShardedCache
	st   *Store
	path string

	mu    sync.Mutex
	dirty []byte // encoded records not yet flushed
}

var _ solver.VerdictCache = (*SolverCache)(nil)

const (
	cacheMagic      = "PBSESLVC"
	cacheVersion    = 1
	cacheHeaderSize = 16
	cacheRecordSize = 9
)

// SolverCache returns the store's persistent verdict cache, loading the
// on-disk log on first call.
func (s *Store) SolverCache() (*SolverCache, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache != nil {
		return s.cache, nil
	}
	c := &SolverCache{mem: solver.NewShardedCache(), st: s, path: s.cachePath()}
	n, err := c.load()
	if err != nil {
		return nil, err
	}
	s.stats.VerdictsLoaded = n
	s.cache = c
	return c, nil
}

func (c *SolverCache) load() (int64, error) {
	data, err := os.ReadFile(c.path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: solver cache: %w", err)
	}
	if len(data) < cacheHeaderSize {
		return 0, nil // torn header: treat as empty
	}
	if string(data[:len(cacheMagic)]) != cacheMagic || data[len(cacheMagic)] != cacheVersion {
		return 0, fmt.Errorf("store: solver cache: bad header")
	}
	recs := data[cacheHeaderSize:]
	n := int64(0)
	for len(recs) >= cacheRecordSize { // ignore a torn tail
		key := binary.LittleEndian.Uint64(recs)
		var r solver.Result
		switch recs[8] {
		case 1:
			r = solver.Sat
		case 2:
			r = solver.Unsat
		default:
			// Corrupt verdict byte: skip the record, keep scanning —
			// records are fixed-size so framing survives.
			recs = recs[cacheRecordSize:]
			continue
		}
		c.mem.Put(key, r)
		n++
		recs = recs[cacheRecordSize:]
	}
	return n, nil
}

// Mem returns the in-memory tier, for wiring into schedulers that want
// the *solver.ShardedCache concrete type.
func (c *SolverCache) Mem() *solver.ShardedCache { return c.mem }

// MemStats returns the in-memory tier's traffic counters.
func (c *SolverCache) MemStats() solver.ShardStats { return c.mem.Stats() }

// Get looks up a verdict in the in-memory tier (which holds everything
// loaded from disk plus this run's inserts).
func (c *SolverCache) Get(key uint64) (solver.Result, bool) {
	return c.mem.Get(key)
}

// Put records a Sat/Unsat verdict in memory and queues it for the next
// flush. Verdicts already present (typically: loaded from a prior run)
// are not re-queued, keeping the log roughly one record per distinct
// query across runs.
func (c *SolverCache) Put(key uint64, r solver.Result) {
	if r == solver.Unknown {
		return
	}
	c.mu.Lock()
	if _, ok := c.mem.Peek(key); !ok {
		var rec [cacheRecordSize]byte
		binary.LittleEndian.PutUint64(rec[:], key)
		if r == solver.Sat {
			rec[8] = 1
		} else {
			rec[8] = 2
		}
		c.dirty = append(c.dirty, rec[:]...)
	}
	c.mu.Unlock()
	c.mem.Put(key, r)
}

// Flush appends queued verdicts to the on-disk log (creating it, with
// header, if absent) and fsyncs.
func (c *SolverCache) Flush() error {
	c.mu.Lock()
	dirty := c.dirty
	c.dirty = nil
	c.mu.Unlock()
	if len(dirty) == 0 {
		return nil
	}
	f, err := os.OpenFile(c.path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: solver cache: %w", err)
	}
	defer f.Close()
	if fi, err := f.Stat(); err == nil && fi.Size() == 0 {
		var hdr [cacheHeaderSize]byte
		copy(hdr[:], cacheMagic)
		hdr[len(cacheMagic)] = cacheVersion
		if _, err := f.Write(hdr[:]); err != nil {
			return fmt.Errorf("store: solver cache: %w", err)
		}
	}
	if _, err := f.Write(dirty); err != nil {
		return fmt.Errorf("store: solver cache: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: solver cache: %w", err)
	}
	c.st.mu.Lock()
	c.st.stats.VerdictsFlushed += int64(len(dirty) / cacheRecordSize)
	c.st.mu.Unlock()
	return nil
}
