// Package store is the persistence subsystem for pbSE campaigns: a
// deterministic binary codec for expression DAGs and execution-state
// snapshots, an atomically updated run manifest + checkpoint so a killed
// campaign resumes losing at most one scheduler round, a cross-run
// solver verdict cache backing solver.ShardedCache as a write-behind
// tier, and an on-disk bug-reproducer corpus replayable through
// internal/interp. See DESIGN.md §9.
package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"pbse/internal/expr"
)

// writer builds the binary checkpoint form: varints for integers,
// length-prefixed bytes/strings, fixed 8-byte floats.
type writer struct {
	b []byte
}

func (w *writer) u8(v byte)   { w.b = append(w.b, v) }
func (w *writer) uv(v uint64) { w.b = binary.AppendUvarint(w.b, v) }
func (w *writer) iv(v int64)  { w.b = binary.AppendVarint(w.b, v) }
func (w *writer) f64(v float64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, math.Float64bits(v))
}

func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *writer) bytes(p []byte) {
	w.uv(uint64(len(p)))
	w.b = append(w.b, p...)
}

func (w *writer) str(s string) {
	w.uv(uint64(len(s)))
	w.b = append(w.b, s...)
}

// reader is the bounds-checked mirror of writer. Every method returns an
// error instead of panicking, so the decoder survives corrupt or
// truncated bytes (exercised by FuzzSnapshotRoundtrip).
type reader struct {
	b   []byte
	off int
}

var errTruncated = fmt.Errorf("store: truncated data")

func (r *reader) u8() (byte, error) {
	if r.off >= len(r.b) {
		return 0, errTruncated
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *reader) uv() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, errTruncated
	}
	r.off += n
	return v, nil
}

func (r *reader) iv() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, errTruncated
	}
	r.off += n
	return v, nil
}

func (r *reader) f64() (float64, error) {
	if r.off+8 > len(r.b) {
		return 0, errTruncated
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return math.Float64frombits(v), nil
}

func (r *reader) bool() (bool, error) {
	v, err := r.u8()
	return v != 0, err
}

// count reads an element count, rejecting values that could not fit in
// the remaining bytes (each element costs at least one byte) — the guard
// against huge allocations from corrupt length fields.
func (r *reader) count() (int, error) {
	v, err := r.uv()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.b)-r.off) {
		return 0, fmt.Errorf("store: count %d exceeds remaining %d bytes", v, len(r.b)-r.off)
	}
	return int(v), nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+n])
	r.off += n
	return out, nil
}

func (r *reader) str() (string, error) {
	n, err := r.count()
	if err != nil {
		return "", err
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s, nil
}

// exprEnc serialises a set of expression DAGs as a deduplicated node
// table. Nodes are emitted in ascending creation-id order, which is
// automatically topological (children precede parents) and — crucially —
// preserves the *relative* id order of the nodes after decoding, so the
// constructors' id-based commutative canonicalisation makes the same
// decisions in a resumed Context as it did in the original one.
type exprEnc struct {
	nodes  []*expr.Expr
	idx    map[*expr.Expr]uint64
	arrs   []*expr.Array
	arrIdx map[*expr.Array]uint64
}

func newExprEnc() *exprEnc {
	return &exprEnc{idx: make(map[*expr.Expr]uint64, 1024), arrIdx: make(map[*expr.Array]uint64, 2)}
}

// add registers e's whole DAG (iteratively — constraint chains can be
// deep) for the table. Call for every root before writeTable.
func (e *exprEnc) add(root *expr.Expr) {
	if root == nil {
		return
	}
	if _, ok := e.idx[root]; ok {
		return
	}
	stack := []*expr.Expr{root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, ok := e.idx[n]; ok {
			continue
		}
		e.idx[n] = 0 // placeholder; final indices assigned in writeTable
		e.nodes = append(e.nodes, n)
		if a := n.Array(); a != nil {
			if _, ok := e.arrIdx[a]; !ok {
				e.arrIdx[a] = uint64(len(e.arrs))
				e.arrs = append(e.arrs, a)
			}
		}
		for i := 0; i < n.NumKids(); i++ {
			if k := n.Kid(i); k != nil {
				if _, ok := e.idx[k]; !ok {
					stack = append(stack, k)
				}
			}
		}
	}
}

// writeTable emits the array and node tables and fixes the final node
// indices used by ref.
func (e *exprEnc) writeTable(w *writer) {
	sort.Slice(e.nodes, func(i, j int) bool { return e.nodes[i].ID() < e.nodes[j].ID() })
	for i, n := range e.nodes {
		e.idx[n] = uint64(i)
	}
	sort.Slice(e.arrs, func(i, j int) bool { return e.arrs[i].Name < e.arrs[j].Name })
	for i, a := range e.arrs {
		e.arrIdx[a] = uint64(i)
	}
	w.uv(uint64(len(e.arrs)))
	for _, a := range e.arrs {
		w.str(a.Name)
		w.uv(uint64(a.Size))
	}
	w.uv(uint64(len(e.nodes)))
	for _, n := range e.nodes {
		w.u8(byte(n.Kind()))
		w.u8(byte(n.Width()))
		switch n.Kind() {
		case expr.Const:
			w.uv(constVal(n))
		case expr.Read:
			w.uv(e.arrIdx[n.Array()])
			w.uv(uint64(n.ReadIndex()))
		default:
			for i := 0; i < n.NumKids(); i++ {
				w.uv(e.idx[n.Kid(i)])
			}
		}
	}
}

// constVal reads a Const's value without tripping the non-const panic on
// adversarial inputs (the encoder only sees well-formed nodes, but keep
// the invariant local).
func constVal(n *expr.Expr) uint64 {
	return n.Value()
}

// ref writes a node reference: 0 for nil, index+1 otherwise.
func (e *exprEnc) ref(w *writer, n *expr.Expr) {
	if n == nil {
		w.uv(0)
		return
	}
	w.uv(e.idx[n] + 1)
}

// ArrayResolver maps a serialised array (by name and size) to the live
// array of the decode-target Context — typically the executor's input
// array. Returning an error rejects the checkpoint.
type ArrayResolver func(name string, size int) (*expr.Array, error)

// exprDec rebuilds an encoded node table verbatim inside ctx via
// expr.Rebuild, so decoded nodes are structurally identical — and
// fingerprint-identical — to what was encoded.
type exprDec struct {
	ctx   *expr.Context
	nodes []*expr.Expr
	arrs  []*expr.Array
}

func readExprTable(r *reader, ctx *expr.Context, resolve ArrayResolver) (*exprDec, error) {
	d := &exprDec{ctx: ctx}
	na, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < na; i++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		size, err := r.uv()
		if err != nil {
			return nil, err
		}
		if size > 1<<30 {
			return nil, fmt.Errorf("store: array %q size %d too large", name, size)
		}
		arr, err := resolve(name, int(size))
		if err != nil {
			return nil, err
		}
		d.arrs = append(d.arrs, arr)
	}
	nn, err := r.count()
	if err != nil {
		return nil, err
	}
	d.nodes = make([]*expr.Expr, 0, nn)
	for i := 0; i < nn; i++ {
		kind, err := r.u8()
		if err != nil {
			return nil, err
		}
		width, err := r.u8()
		if err != nil {
			return nil, err
		}
		k := expr.Kind(kind)
		var (
			val  uint64
			arr  *expr.Array
			kids []*expr.Expr
		)
		switch k {
		case expr.Const:
			if val, err = r.uv(); err != nil {
				return nil, err
			}
		case expr.Read:
			ai, err := r.uv()
			if err != nil {
				return nil, err
			}
			if ai >= uint64(len(d.arrs)) {
				return nil, fmt.Errorf("store: node %d: array index %d out of range", i, ai)
			}
			arr = d.arrs[ai]
			if val, err = r.uv(); err != nil {
				return nil, err
			}
		default:
			n := expr.Arity(k)
			if n < 0 {
				return nil, fmt.Errorf("store: node %d: unknown expr kind %d", i, kind)
			}
			kids = make([]*expr.Expr, n)
			for j := 0; j < n; j++ {
				ki, err := r.uv()
				if err != nil {
					return nil, err
				}
				if ki >= uint64(i) {
					return nil, fmt.Errorf("store: node %d: forward kid reference %d", i, ki)
				}
				kids[j] = d.nodes[ki]
			}
		}
		e, err := d.ctx.Rebuild(k, uint(width), val, arr, kids)
		if err != nil {
			return nil, err
		}
		d.nodes = append(d.nodes, e)
	}
	return d, nil
}

// ref reads a node reference written by exprEnc.ref.
func (d *exprDec) ref(r *reader) (*expr.Expr, error) {
	v, err := r.uv()
	if err != nil {
		return nil, err
	}
	if v == 0 {
		return nil, nil
	}
	if v > uint64(len(d.nodes)) {
		return nil, fmt.Errorf("store: node reference %d out of range", v)
	}
	return d.nodes[v-1], nil
}
