package store

import (
	"fmt"

	"pbse/internal/bugs"
	"pbse/internal/concolic"
	"pbse/internal/expr"
	"pbse/internal/ir"
	"pbse/internal/phase"
	"pbse/internal/solver"
	"pbse/internal/supervise"
	"pbse/internal/symex"
)

// Checkpoint is the resumable image of a pbSE campaign at a scheduler
// round barrier. Everything the schedulers need to continue bit-exact is
// here: concolic/phase metadata (so resume skips tracing and k-means),
// global coverage and bug ledger, per-pool phase stats, the scheduler
// position (mode + next turn/round + live pool order + rng draw counts),
// and the live execution states themselves, serialised per expression
// section. Aggregate counters of work done before the checkpoint ride
// along as "carry" values, since a resumed executor restarts its own
// counters at zero.
type Checkpoint struct {
	Mode       string // "roundrobin", "sequential", or "parallel"
	NextTurn   int64  // round-robin: next turn index; sequential: next phase; parallel: next round
	RoundsDone int64
	RNGDraws   int64 // single-worker schedulers: source draws so far
	// NextStateID is the main executor's next fork ID (single-worker
	// schedulers; islands carry their own in their StateList).
	NextStateID int
	// DeadClock is the summed virtual clock of parallel islands that
	// drained before this checkpoint — they have no section anymore but
	// still count toward global virtual time. The work-stealing scheduler
	// stores the workers' total virtual time here (its sections carry no
	// per-worker clocks; states are re-dealt on resume).
	DeadClock int64
	// Epoch is the coverage board's publication epoch (work-stealing
	// scheduler; format version 3). Zero for other modes.
	Epoch int64

	Clock      int64
	CTime      int64
	PTimeNanos int64
	ConStart   int64
	ConSteps   int64
	ConExited  bool

	BBVs     []concolic.BBV
	Division *phase.Division

	Covered    []int
	Series     []CoveragePoint
	Bugs       []*bugs.Report
	Quarantine []symex.QuarantineRecord

	CarryGov     symex.GovStats
	CarrySolver  solver.Stats
	CarryWorkers []WorkerStat
	// CarrySup is the supervision carry (format version 2; zero when
	// resuming a v1 checkpoint or an unsupervised campaign).
	CarrySup supervise.SupStats

	PhaseStats []PhaseStat // all pools, scheduler order
	LiveIDs    []int       // phase IDs still live, scheduler order

	Sections []StateSection
}

// CoveragePoint mirrors pbse.CoveragePoint (store cannot import pbse).
type CoveragePoint struct {
	Time    int64
	Covered int
}

// WorkerStat mirrors pbse.WorkerStat.
type WorkerStat struct {
	Worker int
	Turns  int64
	Steps  int64
}

// PhaseStat mirrors pbse.PhaseStat.
type PhaseStat struct {
	ID          int
	Trap        bool
	SeedStates  int
	Steps       int64
	Turns       int64
	NewBlocks   int
	Bugs        int
	Quarantines int
}

// StateSection groups state lists that share one expression table — and
// therefore decode into one expr.Context. Single-worker schedulers write
// one section holding a list per pool; the parallel scheduler writes one
// section per island.
type StateSection struct {
	Lists []StateList

	raw []byte // decode side: undecoded section bytes
}

// StateList is the serialised state pool of one phase, with the island
// scheduler position for parallel checkpoints. Bugs is the owning
// island's private bug ledger (parallel mode only): each island dedups
// bug sites locally, so its per-phase bug counter only advances on sites
// new to that island — resuming must restore the ledger or re-detections
// of pre-kill bugs would be double-counted. Single-worker checkpoints
// leave it nil (their one ledger is Checkpoint.Bugs).
type StateList struct {
	PhaseID     int
	Clock       int64
	RNGDraws    int64
	NextStateID int
	States      []*symex.StateSnap
	Bugs        []*bugs.Report
}

// Format versions: v1 is the original layout; v2 appends the solver
// counters added after v1 froze (StaticPrunes, PrecheckDeadlines) and
// the supervision carry after the CarryWorkers block; v3 appends the
// work-stealing scheduler's coverage epoch and the batched-dispatch
// solver counters. Decoding accepts all of them — an older checkpoint
// resumes with the newer fields zero.
const (
	checkpointMagic   = "PBSECKP1"
	checkpointVersion = 3
)

// EncodeCheckpoint serialises ck. The encoding is deterministic: equal
// checkpoints produce equal bytes.
func EncodeCheckpoint(ck *Checkpoint) ([]byte, error) {
	w := &writer{b: make([]byte, 0, 1<<16)}
	w.b = append(w.b, checkpointMagic...)
	w.uv(checkpointVersion)

	w.str(ck.Mode)
	w.iv(ck.NextTurn)
	w.iv(ck.RoundsDone)
	w.iv(ck.RNGDraws)
	w.iv(int64(ck.NextStateID))
	w.iv(ck.DeadClock)
	w.iv(ck.Clock)
	w.iv(ck.CTime)
	w.iv(ck.PTimeNanos)
	w.iv(ck.ConStart)
	w.iv(ck.ConSteps)
	w.bool(ck.ConExited)

	w.uv(uint64(len(ck.BBVs)))
	for _, b := range ck.BBVs {
		writeBBV(w, b)
	}
	writeDivision(w, ck.Division)

	w.uv(uint64(len(ck.Covered)))
	for _, id := range ck.Covered {
		w.iv(int64(id))
	}
	w.uv(uint64(len(ck.Series)))
	for _, p := range ck.Series {
		w.iv(p.Time)
		w.iv(int64(p.Covered))
	}
	w.uv(uint64(len(ck.Bugs)))
	for _, b := range ck.Bugs {
		writeBug(w, b)
	}
	w.uv(uint64(len(ck.Quarantine)))
	for _, q := range ck.Quarantine {
		w.iv(int64(q.StateID))
		w.str(q.Func)
		w.str(q.Block)
		w.str(q.Panic)
		w.str(q.Stack)
	}

	writeGov(w, ck.CarryGov)
	writeSolverStats(w, ck.CarrySolver)
	w.uv(uint64(len(ck.CarryWorkers)))
	for _, ws := range ck.CarryWorkers {
		w.iv(int64(ws.Worker))
		w.iv(ws.Turns)
		w.iv(ws.Steps)
	}
	// v2 extension block
	w.iv(ck.CarrySolver.StaticPrunes)
	w.iv(ck.CarrySolver.PrecheckDeadlines)
	writeSup(w, ck.CarrySup)
	// v3 extension block
	w.iv(ck.Epoch)
	w.iv(ck.CarrySolver.Batches)
	w.iv(ck.CarrySolver.BatchedQueries)

	w.uv(uint64(len(ck.PhaseStats)))
	for _, ps := range ck.PhaseStats {
		w.iv(int64(ps.ID))
		w.bool(ps.Trap)
		w.iv(int64(ps.SeedStates))
		w.iv(ps.Steps)
		w.iv(ps.Turns)
		w.iv(int64(ps.NewBlocks))
		w.iv(int64(ps.Bugs))
		w.iv(int64(ps.Quarantines))
	}
	w.uv(uint64(len(ck.LiveIDs)))
	for _, id := range ck.LiveIDs {
		w.iv(int64(id))
	}

	w.uv(uint64(len(ck.Sections)))
	for _, sec := range ck.Sections {
		sw := &writer{}
		if err := encodeSection(sw, &sec); err != nil {
			return nil, err
		}
		w.bytes(sw.b)
	}
	return w.b, nil
}

func encodeSection(w *writer, sec *StateSection) error {
	enc := newExprEnc()
	for _, l := range sec.Lists {
		for _, s := range l.States {
			for _, c := range s.PC {
				enc.add(c)
			}
			for _, f := range s.Frames {
				for _, r := range f.Regs {
					enc.add(r)
				}
			}
			for _, o := range s.Objs {
				for _, e := range o.Sym {
					enc.add(e)
				}
			}
		}
	}
	enc.writeTable(w)
	w.uv(uint64(len(sec.Lists)))
	for _, l := range sec.Lists {
		w.iv(int64(l.PhaseID))
		w.iv(l.Clock)
		w.iv(l.RNGDraws)
		w.iv(int64(l.NextStateID))
		w.uv(uint64(len(l.States)))
		for _, s := range l.States {
			writeState(w, enc, s)
		}
		w.uv(uint64(len(l.Bugs)))
		for _, b := range l.Bugs {
			writeBug(w, b)
		}
	}
	return nil
}

func writeState(w *writer, enc *exprEnc, s *symex.StateSnap) {
	w.iv(int64(s.ID))
	w.uv(uint64(len(s.Frames)))
	for _, f := range s.Frames {
		w.str(f.Fn)
		w.uv(uint64(len(f.Regs)))
		for _, r := range f.Regs {
			enc.ref(w, r)
		}
		w.iv(int64(f.RetDst))
		w.iv(int64(f.RetBlockID))
		w.iv(int64(f.RetIndex))
	}
	w.uv(uint64(len(s.Objs)))
	for _, o := range s.Objs {
		w.uv(uint64(o.ID))
		w.bytes(o.Conc)
		w.bool(o.Sym != nil)
		if o.Sym != nil {
			for _, e := range o.Sym {
				enc.ref(w, e)
			}
		}
	}
	w.uv(uint64(s.NextObjID))
	w.iv(int64(s.BlockID))
	w.iv(int64(s.Idx))
	w.uv(uint64(len(s.PC)))
	for _, c := range s.PC {
		enc.ref(w, c)
	}
	w.iv(int64(s.Depth))
	w.iv(s.ForkTime)
	w.iv(s.LastNewCover)
	w.iv(s.StepsExecuted)
	w.iv(int64(s.SeedForkBlockID))
	w.iv(int64(s.SeedForkIdx))
	var flags byte
	if s.NeedsValidation {
		flags |= 1
	}
	if s.Terminated {
		flags |= 2
	}
	if s.Evicted {
		flags |= 4
	}
	w.u8(flags)
}

// CheckpointFile is a parsed checkpoint whose state sections are still
// raw bytes: sections are decoded on demand into the Context that will
// execute them (a resumed executor's, or a rebuilt island's).
type CheckpointFile struct {
	ck *Checkpoint
}

// Common returns everything except the per-section states.
func (f *CheckpointFile) Common() *Checkpoint { return f.ck }

// NumSections returns the number of state sections.
func (f *CheckpointFile) NumSections() int { return len(f.ck.Sections) }

// DecodeSection decodes section i's expression table and state lists
// into ctx, mapping serialised arrays through resolve.
func (f *CheckpointFile) DecodeSection(i int, ctx *expr.Context, resolve ArrayResolver) ([]StateList, error) {
	if i < 0 || i >= len(f.ck.Sections) {
		return nil, fmt.Errorf("store: section %d out of range", i)
	}
	r := &reader{b: f.ck.Sections[i].raw}
	dec, err := readExprTable(r, ctx, resolve)
	if err != nil {
		return nil, err
	}
	nl, err := r.count()
	if err != nil {
		return nil, err
	}
	lists := make([]StateList, 0, nl)
	for j := 0; j < nl; j++ {
		var l StateList
		pid, err := r.iv()
		if err != nil {
			return nil, err
		}
		l.PhaseID = int(pid)
		if l.Clock, err = r.iv(); err != nil {
			return nil, err
		}
		if l.RNGDraws, err = r.iv(); err != nil {
			return nil, err
		}
		nid, err := r.iv()
		if err != nil {
			return nil, err
		}
		l.NextStateID = int(nid)
		ns, err := r.count()
		if err != nil {
			return nil, err
		}
		for k := 0; k < ns; k++ {
			s, err := readState(r, dec)
			if err != nil {
				return nil, err
			}
			l.States = append(l.States, s)
		}
		nb, err := r.count()
		if err != nil {
			return nil, err
		}
		for k := 0; k < nb; k++ {
			b, err := readBug(r)
			if err != nil {
				return nil, err
			}
			l.Bugs = append(l.Bugs, b)
		}
		lists = append(lists, l)
	}
	return lists, nil
}

func readState(r *reader, dec *exprDec) (*symex.StateSnap, error) {
	s := &symex.StateSnap{}
	id, err := r.iv()
	if err != nil {
		return nil, err
	}
	s.ID = int(id)
	nf, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nf; i++ {
		var f symex.FrameSnap
		if f.Fn, err = r.str(); err != nil {
			return nil, err
		}
		nr, err := r.count()
		if err != nil {
			return nil, err
		}
		f.Regs = make([]*expr.Expr, nr)
		for j := 0; j < nr; j++ {
			if f.Regs[j], err = dec.ref(r); err != nil {
				return nil, err
			}
		}
		rd, err := r.iv()
		if err != nil {
			return nil, err
		}
		f.RetDst = ir.Reg(rd)
		rb, err := r.iv()
		if err != nil {
			return nil, err
		}
		f.RetBlockID = int(rb)
		ri, err := r.iv()
		if err != nil {
			return nil, err
		}
		f.RetIndex = int(ri)
		s.Frames = append(s.Frames, f)
	}
	no, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < no; i++ {
		var o symex.ObjSnap
		oid, err := r.uv()
		if err != nil {
			return nil, err
		}
		o.ID = uint32(oid)
		if o.Conc, err = r.bytes(); err != nil {
			return nil, err
		}
		o.Size = len(o.Conc)
		hasSym, err := r.bool()
		if err != nil {
			return nil, err
		}
		if hasSym {
			o.Sym = make([]*expr.Expr, o.Size)
			for j := 0; j < o.Size; j++ {
				if o.Sym[j], err = dec.ref(r); err != nil {
					return nil, err
				}
			}
		}
		s.Objs = append(s.Objs, o)
	}
	noid, err := r.uv()
	if err != nil {
		return nil, err
	}
	s.NextObjID = uint32(noid)
	bid, err := r.iv()
	if err != nil {
		return nil, err
	}
	s.BlockID = int(bid)
	idx, err := r.iv()
	if err != nil {
		return nil, err
	}
	s.Idx = int(idx)
	np, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < np; i++ {
		c, err := dec.ref(r)
		if err != nil {
			return nil, err
		}
		if c == nil {
			return nil, fmt.Errorf("store: state %d: nil path constraint", s.ID)
		}
		s.PC = append(s.PC, c)
	}
	d, err := r.iv()
	if err != nil {
		return nil, err
	}
	s.Depth = int(d)
	if s.ForkTime, err = r.iv(); err != nil {
		return nil, err
	}
	if s.LastNewCover, err = r.iv(); err != nil {
		return nil, err
	}
	if s.StepsExecuted, err = r.iv(); err != nil {
		return nil, err
	}
	sfb, err := r.iv()
	if err != nil {
		return nil, err
	}
	s.SeedForkBlockID = int(sfb)
	sfi, err := r.iv()
	if err != nil {
		return nil, err
	}
	s.SeedForkIdx = int(sfi)
	flags, err := r.u8()
	if err != nil {
		return nil, err
	}
	s.NeedsValidation = flags&1 != 0
	s.Terminated = flags&2 != 0
	s.Evicted = flags&4 != 0
	return s, nil
}

// DecodeCheckpoint parses the common part of a checkpoint; state
// sections stay raw until DecodeSection.
func DecodeCheckpoint(data []byte) (*CheckpointFile, error) {
	if len(data) < len(checkpointMagic) || string(data[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("store: not a checkpoint file")
	}
	r := &reader{b: data, off: len(checkpointMagic)}
	ver, err := r.uv()
	if err != nil {
		return nil, err
	}
	if ver < 1 || ver > checkpointVersion {
		return nil, fmt.Errorf("store: checkpoint version %d (want 1..%d)", ver, checkpointVersion)
	}
	ck := &Checkpoint{}
	if ck.Mode, err = r.str(); err != nil {
		return nil, err
	}
	if ck.NextTurn, err = r.iv(); err != nil {
		return nil, err
	}
	if ck.RoundsDone, err = r.iv(); err != nil {
		return nil, err
	}
	if ck.RNGDraws, err = r.iv(); err != nil {
		return nil, err
	}
	nsi, err := r.iv()
	if err != nil {
		return nil, err
	}
	ck.NextStateID = int(nsi)
	if ck.DeadClock, err = r.iv(); err != nil {
		return nil, err
	}
	if ck.Clock, err = r.iv(); err != nil {
		return nil, err
	}
	if ck.CTime, err = r.iv(); err != nil {
		return nil, err
	}
	if ck.PTimeNanos, err = r.iv(); err != nil {
		return nil, err
	}
	if ck.ConStart, err = r.iv(); err != nil {
		return nil, err
	}
	if ck.ConSteps, err = r.iv(); err != nil {
		return nil, err
	}
	if ck.ConExited, err = r.bool(); err != nil {
		return nil, err
	}

	nb, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nb; i++ {
		b, err := readBBV(r)
		if err != nil {
			return nil, err
		}
		ck.BBVs = append(ck.BBVs, b)
	}
	if ck.Division, err = readDivision(r); err != nil {
		return nil, err
	}

	nc, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nc; i++ {
		id, err := r.iv()
		if err != nil {
			return nil, err
		}
		ck.Covered = append(ck.Covered, int(id))
	}
	np, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < np; i++ {
		var p CoveragePoint
		if p.Time, err = r.iv(); err != nil {
			return nil, err
		}
		cov, err := r.iv()
		if err != nil {
			return nil, err
		}
		p.Covered = int(cov)
		ck.Series = append(ck.Series, p)
	}
	nbug, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nbug; i++ {
		b, err := readBug(r)
		if err != nil {
			return nil, err
		}
		ck.Bugs = append(ck.Bugs, b)
	}
	nq, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nq; i++ {
		var q symex.QuarantineRecord
		sid, err := r.iv()
		if err != nil {
			return nil, err
		}
		q.StateID = int(sid)
		if q.Func, err = r.str(); err != nil {
			return nil, err
		}
		if q.Block, err = r.str(); err != nil {
			return nil, err
		}
		if q.Panic, err = r.str(); err != nil {
			return nil, err
		}
		if q.Stack, err = r.str(); err != nil {
			return nil, err
		}
		ck.Quarantine = append(ck.Quarantine, q)
	}

	if ck.CarryGov, err = readGov(r); err != nil {
		return nil, err
	}
	if ck.CarrySolver, err = readSolverStats(r); err != nil {
		return nil, err
	}
	nw, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nw; i++ {
		var ws WorkerStat
		wk, err := r.iv()
		if err != nil {
			return nil, err
		}
		ws.Worker = int(wk)
		if ws.Turns, err = r.iv(); err != nil {
			return nil, err
		}
		if ws.Steps, err = r.iv(); err != nil {
			return nil, err
		}
		ck.CarryWorkers = append(ck.CarryWorkers, ws)
	}
	if ver >= 2 {
		if ck.CarrySolver.StaticPrunes, err = r.iv(); err != nil {
			return nil, err
		}
		if ck.CarrySolver.PrecheckDeadlines, err = r.iv(); err != nil {
			return nil, err
		}
		if ck.CarrySup, err = readSup(r); err != nil {
			return nil, err
		}
	}
	if ver >= 3 {
		if ck.Epoch, err = r.iv(); err != nil {
			return nil, err
		}
		if ck.CarrySolver.Batches, err = r.iv(); err != nil {
			return nil, err
		}
		if ck.CarrySolver.BatchedQueries, err = r.iv(); err != nil {
			return nil, err
		}
	}

	nps, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nps; i++ {
		var ps PhaseStat
		id, err := r.iv()
		if err != nil {
			return nil, err
		}
		ps.ID = int(id)
		if ps.Trap, err = r.bool(); err != nil {
			return nil, err
		}
		ss, err := r.iv()
		if err != nil {
			return nil, err
		}
		ps.SeedStates = int(ss)
		if ps.Steps, err = r.iv(); err != nil {
			return nil, err
		}
		if ps.Turns, err = r.iv(); err != nil {
			return nil, err
		}
		nb, err := r.iv()
		if err != nil {
			return nil, err
		}
		ps.NewBlocks = int(nb)
		bg, err := r.iv()
		if err != nil {
			return nil, err
		}
		ps.Bugs = int(bg)
		qr, err := r.iv()
		if err != nil {
			return nil, err
		}
		ps.Quarantines = int(qr)
		ck.PhaseStats = append(ck.PhaseStats, ps)
	}
	nl, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nl; i++ {
		id, err := r.iv()
		if err != nil {
			return nil, err
		}
		ck.LiveIDs = append(ck.LiveIDs, int(id))
	}

	nsec, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nsec; i++ {
		raw, err := r.bytes()
		if err != nil {
			return nil, err
		}
		ck.Sections = append(ck.Sections, StateSection{raw: raw})
	}
	return &CheckpointFile{ck: ck}, nil
}

func writeBBV(w *writer, b concolic.BBV) {
	w.iv(int64(b.Index))
	w.iv(b.Time)
	ids := make([]int, 0, len(b.Counts))
	for id := range b.Counts {
		ids = append(ids, id)
	}
	// deterministic map order
	sortInts(ids)
	w.uv(uint64(len(ids)))
	for _, id := range ids {
		w.iv(int64(id))
		w.iv(int64(b.Counts[id]))
	}
	w.f64(b.Coverage)
}

func readBBV(r *reader) (concolic.BBV, error) {
	var b concolic.BBV
	idx, err := r.iv()
	if err != nil {
		return b, err
	}
	b.Index = int(idx)
	if b.Time, err = r.iv(); err != nil {
		return b, err
	}
	n, err := r.count()
	if err != nil {
		return b, err
	}
	b.Counts = make(map[int]int, n)
	for i := 0; i < n; i++ {
		id, err := r.iv()
		if err != nil {
			return b, err
		}
		cnt, err := r.iv()
		if err != nil {
			return b, err
		}
		b.Counts[int(id)] = int(cnt)
	}
	if b.Coverage, err = r.f64(); err != nil {
		return b, err
	}
	return b, nil
}

func writeDivision(w *writer, d *phase.Division) {
	if d == nil {
		w.bool(false)
		return
	}
	w.bool(true)
	w.iv(int64(d.K))
	w.uv(uint64(len(d.Assign)))
	for _, a := range d.Assign {
		w.iv(int64(a))
	}
	w.uv(uint64(len(d.Phases)))
	for _, p := range d.Phases {
		w.iv(int64(p.ID))
		w.uv(uint64(len(p.BBVs)))
		for _, b := range p.BBVs {
			w.iv(int64(b))
		}
		w.iv(p.FirstTime)
		w.bool(p.Trap)
		w.iv(int64(p.LongestRun))
		w.f64(p.InputLoopFrac)
	}
	w.iv(int64(d.NumTrap))
}

func readDivision(r *reader) (*phase.Division, error) {
	ok, err := r.bool()
	if err != nil || !ok {
		return nil, err
	}
	d := &phase.Division{}
	k, err := r.iv()
	if err != nil {
		return nil, err
	}
	d.K = int(k)
	na, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < na; i++ {
		a, err := r.iv()
		if err != nil {
			return nil, err
		}
		d.Assign = append(d.Assign, int(a))
	}
	np, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < np; i++ {
		var p phase.Phase
		id, err := r.iv()
		if err != nil {
			return nil, err
		}
		p.ID = int(id)
		nb, err := r.count()
		if err != nil {
			return nil, err
		}
		for j := 0; j < nb; j++ {
			b, err := r.iv()
			if err != nil {
				return nil, err
			}
			p.BBVs = append(p.BBVs, int(b))
		}
		if p.FirstTime, err = r.iv(); err != nil {
			return nil, err
		}
		if p.Trap, err = r.bool(); err != nil {
			return nil, err
		}
		lr, err := r.iv()
		if err != nil {
			return nil, err
		}
		p.LongestRun = int(lr)
		if p.InputLoopFrac, err = r.f64(); err != nil {
			return nil, err
		}
		d.Phases = append(d.Phases, p)
	}
	nt, err := r.iv()
	if err != nil {
		return nil, err
	}
	d.NumTrap = int(nt)
	return d, nil
}

func writeBug(w *writer, b *bugs.Report) {
	w.iv(int64(b.Kind))
	w.str(b.Func)
	w.str(b.Block)
	w.iv(int64(b.BlockID))
	w.iv(int64(b.Index))
	w.str(b.Msg)
	w.bool(b.Input != nil)
	if b.Input != nil {
		w.bytes(b.Input)
	}
	w.iv(b.Time)
	w.iv(int64(b.Phase))
}

func readBug(r *reader) (*bugs.Report, error) {
	b := &bugs.Report{}
	k, err := r.iv()
	if err != nil {
		return nil, err
	}
	b.Kind = bugs.Kind(k)
	if b.Func, err = r.str(); err != nil {
		return nil, err
	}
	if b.Block, err = r.str(); err != nil {
		return nil, err
	}
	bid, err := r.iv()
	if err != nil {
		return nil, err
	}
	b.BlockID = int(bid)
	idx, err := r.iv()
	if err != nil {
		return nil, err
	}
	b.Index = int(idx)
	if b.Msg, err = r.str(); err != nil {
		return nil, err
	}
	hasInput, err := r.bool()
	if err != nil {
		return nil, err
	}
	if hasInput {
		if b.Input, err = r.bytes(); err != nil {
			return nil, err
		}
	}
	if b.Time, err = r.iv(); err != nil {
		return nil, err
	}
	ph, err := r.iv()
	if err != nil {
		return nil, err
	}
	b.Phase = int(ph)
	return b, nil
}

func writeGov(w *writer, g symex.GovStats) {
	w.iv(g.SolverUnknowns)
	w.iv(g.SolverRetries)
	w.iv(g.Concretizations)
	w.iv(g.Quarantines)
	w.iv(g.Evictions)
}

func readGov(r *reader) (symex.GovStats, error) {
	var g symex.GovStats
	var err error
	if g.SolverUnknowns, err = r.iv(); err != nil {
		return g, err
	}
	if g.SolverRetries, err = r.iv(); err != nil {
		return g, err
	}
	if g.Concretizations, err = r.iv(); err != nil {
		return g, err
	}
	if g.Quarantines, err = r.iv(); err != nil {
		return g, err
	}
	if g.Evictions, err = r.iv(); err != nil {
		return g, err
	}
	return g, nil
}

func writeSolverStats(w *writer, s solver.Stats) {
	w.iv(s.Queries)
	w.iv(s.CacheHits)
	w.iv(s.SharedHits)
	w.iv(s.CandidateSat)
	w.iv(s.IntervalFast)
	w.iv(s.SATRuns)
	w.iv(s.Conflicts)
	w.iv(s.Unknowns)
	w.iv(s.BudgetExhausted)
	w.iv(s.DeadlineExceeded)
	w.iv(s.InjectedUnknowns)
	w.iv(s.InternalRecovered)
}

func readSolverStats(r *reader) (solver.Stats, error) {
	var s solver.Stats
	fields := []*int64{
		&s.Queries, &s.CacheHits, &s.SharedHits, &s.CandidateSat,
		&s.IntervalFast, &s.SATRuns, &s.Conflicts, &s.Unknowns,
		&s.BudgetExhausted, &s.DeadlineExceeded, &s.InjectedUnknowns,
		&s.InternalRecovered,
	}
	for _, f := range fields {
		v, err := r.iv()
		if err != nil {
			return s, err
		}
		*f = v
	}
	return s, nil
}

func writeSup(w *writer, s supervise.SupStats) {
	w.iv(s.Crashes)
	w.iv(s.Hangs)
	w.iv(s.WatchdogTrips)
	w.iv(s.Restarts)
	w.iv(s.BackoffSkips)
	w.iv(s.DegradedRounds)
	w.iv(s.RequeuedStates)
	w.iv(s.QuarantinedIslands)
	w.iv(s.QuarantinedStates)
	w.iv(s.FaultCheckpoints)
	w.iv(s.StoreFaults)
	w.iv(s.ProcessRestarts)
}

func readSup(r *reader) (supervise.SupStats, error) {
	var s supervise.SupStats
	fields := []*int64{
		&s.Crashes, &s.Hangs, &s.WatchdogTrips, &s.Restarts,
		&s.BackoffSkips, &s.DegradedRounds, &s.RequeuedStates,
		&s.QuarantinedIslands, &s.QuarantinedStates, &s.FaultCheckpoints,
		&s.StoreFaults, &s.ProcessRestarts,
	}
	for _, f := range fields {
		v, err := r.iv()
		if err != nil {
			return s, err
		}
		*f = v
	}
	return s, nil
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
