package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"pbse/internal/bugs"
	"pbse/internal/interp"
	"pbse/internal/ir"
)

// CorpusEntry is the JSON metadata of one stored bug reproducer. The
// paired input lives in a sibling file so it can be fed to anything that
// eats raw bytes (the replayer, a fuzzer, a debugger harness).
type CorpusEntry struct {
	ID        string `json:"id"` // bugs.Report.ID()
	Kind      string `json:"kind"`
	KindCode  int    `json:"kind_code"` // numeric bugs.Kind
	Func      string `json:"func"`
	Block     string `json:"block"`
	BlockID   int    `json:"block_id"`
	Index     int    `json:"index"`
	Msg       string `json:"msg"`
	Time      int64  `json:"time"` // virtual time of detection
	InputFile string `json:"input_file"`
}

// AddReproducer stores r's witness input in the corpus, keyed and
// deduplicated by stable bug ID. Reports without an input (no model
// available) are skipped. Returns whether a new entry was written.
//
// The input file is written before the JSON metadata: the metadata is
// the commit record, so a crash between the two leaves an orphan input,
// never a dangling reference.
func (s *Store) AddReproducer(r *bugs.Report) (bool, error) {
	if r == nil || r.Input == nil {
		return false, nil
	}
	id := r.ID()
	metaPath := filepath.Join(s.corpusDir(), id+".json")
	if _, err := os.Stat(metaPath); err == nil {
		return false, nil
	}
	if err := s.injectIO("reproducer"); err != nil {
		return false, err
	}
	inputName := id + ".input"
	if err := writeFileAtomic(filepath.Join(s.corpusDir(), inputName), r.Input); err != nil {
		return false, err
	}
	entry := CorpusEntry{
		ID:        id,
		Kind:      r.Kind.String(),
		KindCode:  int(r.Kind),
		Func:      r.Func,
		Block:     r.Block,
		BlockID:   r.BlockID,
		Index:     r.Index,
		Msg:       r.Msg,
		Time:      r.Time,
		InputFile: inputName,
	}
	data, err := json.MarshalIndent(&entry, "", "  ")
	if err != nil {
		return false, fmt.Errorf("store: corpus: %w", err)
	}
	if err := writeFileAtomic(metaPath, append(data, '\n')); err != nil {
		return false, err
	}
	s.mu.Lock()
	s.stats.CorpusAdded++
	s.mu.Unlock()
	return true, nil
}

// ReadReproducer loads one corpus entry and its input bytes by bug ID.
func (s *Store) ReadReproducer(id string) (*CorpusEntry, []byte, error) {
	data, err := os.ReadFile(filepath.Join(s.corpusDir(), id+".json"))
	if err != nil {
		return nil, nil, fmt.Errorf("store: corpus: %w", err)
	}
	entry := &CorpusEntry{}
	if err := json.Unmarshal(data, entry); err != nil {
		return nil, nil, fmt.Errorf("store: corpus %s: %w", id, err)
	}
	input, err := os.ReadFile(filepath.Join(s.corpusDir(), entry.InputFile))
	if err != nil {
		return nil, nil, fmt.Errorf("store: corpus %s: %w", id, err)
	}
	return entry, input, nil
}

// Corpus lists all stored entries, sorted by ID (directory order is
// already lexicographic via ReadDir).
func (s *Store) Corpus() ([]*CorpusEntry, error) {
	des, err := os.ReadDir(s.corpusDir())
	if err != nil {
		return nil, fmt.Errorf("store: corpus: %w", err)
	}
	var out []*CorpusEntry
	for _, de := range des {
		name := de.Name()
		if filepath.Ext(name) != ".json" {
			continue
		}
		entry, _, err := s.ReadReproducer(name[:len(name)-len(".json")])
		if err != nil {
			return nil, err
		}
		out = append(out, entry)
	}
	return out, nil
}

// faultForKind maps a bug class to the concrete fault class the
// interpreter raises for it.
var faultForKind = map[bugs.Kind]interp.FaultKind{
	bugs.OOBRead:    interp.FaultOOBRead,
	bugs.OOBWrite:   interp.FaultOOBWrite,
	bugs.DivByZero:  interp.FaultDivByZero,
	bugs.NullDeref:  interp.FaultNullDeref,
	bugs.AssertFail: interp.FaultAssert,
}

// Replay runs entry's input concretely through prog and reports whether
// it reproduces the recorded bug: same fault class at the same
// instruction. A fault elsewhere (or a clean exit) is a failed replay,
// with the observed outcome in the returned message.
func Replay(prog *ir.Program, entry *CorpusEntry, input []byte, maxSteps int64) (bool, string, error) {
	want, ok := faultForKind[bugs.Kind(entry.KindCode)]
	if !ok {
		return false, "", fmt.Errorf("store: corpus %s: unknown bug kind %d", entry.ID, entry.KindCode)
	}
	m := interp.New(prog, input, interp.Options{MaxSteps: maxSteps})
	res := m.Run()
	if res.Reason != interp.StopFault {
		return false, fmt.Sprintf("no fault (stop reason %d after %d steps)", res.Reason, res.Steps), nil
	}
	f := res.Fault
	if f.Kind != want || f.Block.ID != entry.BlockID || f.Index != entry.Index {
		return false, fmt.Sprintf("different fault: %v", f), nil
	}
	return true, fmt.Sprintf("reproduced: %v", f), nil
}
