package store

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Layout of a store directory:
//
//	manifest.json    run identity + status (atomically replaced)
//	checkpoint.bin   latest round-barrier checkpoint (atomically replaced)
//	seed.bin         the concrete seed input of the run
//	solvercache.bin  cross-run verdict log (corruption-tolerant)
//	corpus/          bug reproducers: <id>.input + <id>.json per bug site
//
// manifest.json, checkpoint.bin and solvercache.bin are written
// tmp+fsync+rename (with a parent-dir fsync), so a reader never observes
// a half-written file and a crash between barriers loses at most one
// round of work.

// Run status values in the manifest.
const (
	StatusRunning  = "running"
	StatusComplete = "complete"
)

// Manifest identifies the campaign a store directory belongs to. Resume
// refuses a store whose manifest does not match the requested campaign —
// mixing checkpoints across targets or option sets would be silently
// wrong, not merely stale.
type Manifest struct {
	Version    int    `json:"version"`
	Label      string `json:"label"`       // e.g. the cmd/pbse driver name
	Program    string `json:"program"`     // target signature
	SeedSHA256 string `json:"seed_sha256"` // hex digest of the seed input
	InputSize  int    `json:"input_size"`
	OptionsSig string `json:"options_sig"` // determinism-relevant options
	Status     string `json:"status"`
	Rounds     int64  `json:"rounds"`
	Covered    int    `json:"covered"`
	Bugs       int    `json:"bugs"`
}

const manifestVersion = 1

// Stats counts the store's activity during one campaign.
type Stats struct {
	VerdictsLoaded   int64 // solver verdicts preloaded from disk at open
	VerdictsFlushed  int64 // new verdicts flushed to disk this run
	CorpusAdded      int64 // new bug reproducers written this run
	Checkpoints      int64 // checkpoint files written this run
	CheckpointBytes  int64 // size of the last checkpoint written
	CacheCorruptions int64 // corrupt solver-cache headers/records discarded at load
	InjectedIOFaults int64 // store writes failed by fault injection
	VerdictsEvicted  int64 // verdicts dropped from the cache log by the size bound
	CacheBytes       int64 // size of the last solver-cache log flushed
	FenceRejections  int64 // checkpoint-class writes refused by the cluster fence
}

// IOInjector is the fault surface the store consults before disk
// writes; package faultinject's Injector implements it. A nil injector
// injects nothing.
type IOInjector interface {
	// StoreIO reports whether the write about to run should fail.
	StoreIO() bool
}

// Store is one on-disk run store.
type Store struct {
	dir string

	mu    sync.Mutex
	stats Stats
	cache *SolverCache
	inj   IOInjector
	fence func() error
}

// Open opens (creating if needed) the store at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "corpus"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's activity counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// AdoptSolverCache makes s serve cache (typically a Root's shared
// cache) from SolverCache() instead of loading a private one from its
// own directory. Must be called before the first SolverCache() call;
// adopting after a private cache was loaded is a programming error.
func (s *Store) AdoptSolverCache(cache *SolverCache) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache != nil && s.cache != cache {
		panic("store: AdoptSolverCache after a private cache was loaded")
	}
	s.cache = cache
}

// SetIOInjector wires a fault injector into every subsequent store
// write (checkpoints, manifests, seeds, cache flushes, reproducers).
// Used by supervised chaos runs to prove the campaign tolerates store
// I/O failures instead of dying on them.
func (s *Store) SetIOInjector(inj IOInjector) {
	s.mu.Lock()
	s.inj = inj
	s.mu.Unlock()
}

// SetFence installs a write fence consulted immediately before every
// checkpoint-class write (checkpoint and manifest). The cluster layer
// wires a lease check here so a store whose owner lost its campaign
// lease fails its writes instead of clobbering the successor's state
// (DESIGN.md §14); a nil fence (the default) fences nothing.
func (s *Store) SetFence(fence func() error) {
	s.mu.Lock()
	s.fence = fence
	s.mu.Unlock()
}

// checkFence returns the fence's verdict for a write of what, or nil.
func (s *Store) checkFence(what string) error {
	s.mu.Lock()
	fence := s.fence
	s.mu.Unlock()
	if fence == nil {
		return nil
	}
	if err := fence(); err != nil {
		s.mu.Lock()
		s.stats.FenceRejections++
		s.mu.Unlock()
		return fmt.Errorf("store: %s write fenced: %w", what, err)
	}
	return nil
}

// injectIO returns an injected write error for what, or nil.
func (s *Store) injectIO(what string) error {
	s.mu.Lock()
	inj := s.inj
	s.mu.Unlock()
	if inj == nil || !inj.StoreIO() {
		return nil
	}
	s.mu.Lock()
	s.stats.InjectedIOFaults++
	s.mu.Unlock()
	return fmt.Errorf("store: %s: injected I/O fault", what)
}

func (s *Store) manifestPath() string   { return filepath.Join(s.dir, "manifest.json") }
func (s *Store) checkpointPath() string { return filepath.Join(s.dir, "checkpoint.bin") }
func (s *Store) seedPath() string       { return filepath.Join(s.dir, "seed.bin") }
func (s *Store) cachePath() string      { return filepath.Join(s.dir, "solvercache.bin") }
func (s *Store) corpusDir() string      { return filepath.Join(s.dir, "corpus") }

// SeedSig returns the manifest digest of a seed input.
func SeedSig(seed []byte) string {
	sum := sha256.Sum256(seed)
	return hex.EncodeToString(sum[:])
}

// WriteManifest atomically replaces the manifest.
func (s *Store) WriteManifest(m *Manifest) error {
	if err := s.injectIO("manifest"); err != nil {
		return err
	}
	if err := s.checkFence("manifest"); err != nil {
		return err
	}
	m.Version = manifestVersion
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	return writeFileAtomic(s.manifestPath(), append(data, '\n'))
}

// ReadManifest reads the manifest; (nil, nil) when none exists yet.
func (s *Store) ReadManifest() (*Manifest, error) {
	data, err := os.ReadFile(s.manifestPath())
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: manifest: %w", err)
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("store: manifest: %w", err)
	}
	return m, nil
}

// WriteSeed saves the run's concrete seed input.
func (s *Store) WriteSeed(seed []byte) error {
	if err := s.injectIO("seed"); err != nil {
		return err
	}
	return writeFileAtomic(s.seedPath(), seed)
}

// ReadSeed loads the saved seed input.
func (s *Store) ReadSeed() ([]byte, error) {
	data, err := os.ReadFile(s.seedPath())
	if err != nil {
		return nil, fmt.Errorf("store: seed: %w", err)
	}
	return data, nil
}

// HasCheckpoint reports whether a checkpoint exists.
func (s *Store) HasCheckpoint() bool {
	_, err := os.Stat(s.checkpointPath())
	return err == nil
}

// WriteCheckpoint encodes and atomically replaces the checkpoint. The
// on-disk file is gzip-compressed (BestSpeed): state snapshots repeat
// concrete object bytes and expression shapes heavily, so this cuts
// checkpoint I/O by an order of magnitude at negligible CPU cost.
func (s *Store) WriteCheckpoint(ck *Checkpoint) error {
	if err := s.injectIO("checkpoint"); err != nil {
		return err
	}
	data, err := EncodeCheckpoint(ck)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	zw, _ := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	if _, err := zw.Write(data); err != nil {
		return fmt.Errorf("store: compress checkpoint: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("store: compress checkpoint: %w", err)
	}
	// Fence after the (slow) encode, immediately before the write, so
	// the unguarded window is just the rename itself.
	if err := s.checkFence("checkpoint"); err != nil {
		return err
	}
	if err := writeFileAtomic(s.checkpointPath(), buf.Bytes()); err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.Checkpoints++
	s.stats.CheckpointBytes = int64(buf.Len())
	s.mu.Unlock()
	return nil
}

// ReadCheckpoint parses the checkpoint's common part; sections decode
// lazily via CheckpointFile.DecodeSection. Both gzip-compressed (the
// format WriteCheckpoint produces) and raw encodings are accepted.
func (s *Store) ReadCheckpoint() (*CheckpointFile, error) {
	data, err := os.ReadFile(s.checkpointPath())
	if err != nil {
		return nil, fmt.Errorf("store: checkpoint: %w", err)
	}
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("store: checkpoint: %w", err)
		}
		if data, err = io.ReadAll(zr); err != nil {
			return nil, fmt.Errorf("store: checkpoint: %w", err)
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("store: checkpoint: %w", err)
		}
	}
	return DecodeCheckpoint(data)
}

// AtomicWriteFile writes path via tmp+fsync+rename (with a parent-dir
// fsync), the same crash discipline every store file uses — exported
// for sibling layers (the campaign service's job records) that persist
// alongside a store without belonging to one.
func AtomicWriteFile(path string, data []byte) error {
	return writeFileAtomic(path, data)
}

// writeFileAtomic writes path via tmp+fsync+rename so readers never see a
// partial file and a crash leaves either the old or the new version.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmpName, path)
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: write %s: %w", filepath.Base(path), werr)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
