package bugs

import (
	"testing"
	"testing/quick"
)

func TestCollectorDedup(t *testing.T) {
	c := NewCollector()
	r1 := &Report{Kind: OOBRead, BlockID: 5, Index: 2, Time: 100}
	r2 := &Report{Kind: OOBRead, BlockID: 5, Index: 2, Time: 50} // same site, earlier
	r3 := &Report{Kind: OOBWrite, BlockID: 5, Index: 2, Time: 10}

	if !c.Add(r1) {
		t.Error("first report should be new")
	}
	if c.Add(r2) {
		t.Error("same site should not be new")
	}
	if !c.Add(r3) {
		t.Error("different kind at same site is a different bug")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
	// earliest report kept per site
	for _, r := range c.Reports() {
		if r.Kind == OOBRead && r.Time != 50 {
			t.Errorf("earliest report not kept: t=%d", r.Time)
		}
	}
}

func TestReportsSortedByTime(t *testing.T) {
	c := NewCollector()
	c.Add(&Report{Kind: OOBRead, BlockID: 1, Time: 300})
	c.Add(&Report{Kind: OOBRead, BlockID: 2, Time: 100})
	c.Add(&Report{Kind: OOBRead, BlockID: 3, Time: 200})
	rs := c.Reports()
	for i := 1; i < len(rs); i++ {
		if rs[i].Time < rs[i-1].Time {
			t.Fatalf("reports not time-ordered: %v", rs)
		}
	}
}

func TestCountByKind(t *testing.T) {
	c := NewCollector()
	c.Add(&Report{Kind: OOBRead, BlockID: 1})
	c.Add(&Report{Kind: OOBRead, BlockID: 2})
	c.Add(&Report{Kind: DivByZero, BlockID: 3})
	got := c.CountByKind()
	if got[OOBRead] != 2 || got[DivByZero] != 1 {
		t.Errorf("counts = %v", got)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		OOBRead:    "memory-out-of-bound-read",
		OOBWrite:   "memory-out-of-bound-write",
		DivByZero:  "divide-by-zero",
		NullDeref:  "null-pointer-dereference",
		AssertFail: "assertion-failure",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

// TestCollectorLenInvariant: Len always equals the number of distinct
// (kind, block, index) sites added, whatever the insertion order.
func TestCollectorLenInvariant(t *testing.T) {
	f := func(sites []struct {
		Kind  uint8
		Block uint8
		Index uint8
		Time  uint16
	}) bool {
		c := NewCollector()
		distinct := map[[3]int]bool{}
		for _, s := range sites {
			kind := Kind(int(s.Kind)%5 + 1)
			r := &Report{Kind: kind, BlockID: int(s.Block), Index: int(s.Index), Time: int64(s.Time)}
			c.Add(r)
			distinct[[3]int{int(kind), int(s.Block), int(s.Index)}] = true
		}
		return c.Len() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
