// Package bugs defines bug reports produced by the symbolic executor and
// the deduplicating collector that accumulates them across a run.
package bugs

import (
	"fmt"
	"sort"
)

// Kind classifies a detected bug, mirroring the classes reported in the
// pbSE paper (Table III): memory out-of-bounds read/write, integer
// division by zero, null dereference, and assertion failures.
type Kind int

// Bug kinds.
const (
	OOBRead Kind = iota + 1
	OOBWrite
	DivByZero
	NullDeref
	AssertFail
)

var kindNames = map[Kind]string{
	OOBRead:    "memory-out-of-bound-read",
	OOBWrite:   "memory-out-of-bound-write",
	DivByZero:  "divide-by-zero",
	NullDeref:  "null-pointer-dereference",
	AssertFail: "assertion-failure",
}

// String returns the paper-style class name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("bug(%d)", int(k))
}

// Report is one detected bug with a witness test case.
type Report struct {
	Kind    Kind
	Func    string
	Block   string
	BlockID int
	Index   int    // instruction index within the block
	Msg     string // human-readable details
	Input   []byte // generated test case (may be nil if no model)
	Time    int64  // virtual time of detection
	Phase   int    // pbSE phase in which the bug was found (-1 when N/A)
}

// Site returns the deduplication key: a bug is "the same" when it has the
// same kind at the same instruction.
func (r *Report) Site() string {
	return fmt.Sprintf("%s@bb%d[%d]", r.Kind, r.BlockID, r.Index)
}

// ID returns a stable short identifier for the bug, derived from
// (detector kind, function, block, instruction index). Unlike Site it is
// filename-safe and identical across runs, schedulers, and worker counts
// — the on-disk reproducer corpus and CI assertions key on it.
func (r *Report) ID() string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // separator
		h *= prime64
	}
	h ^= uint64(r.Kind)
	h *= prime64
	mix(r.Func)
	mix(r.Block)
	h ^= uint64(uint32(r.Index))
	h *= prime64
	return fmt.Sprintf("b%016x", h)
}

// String formats the report as one line.
func (r *Report) String() string {
	return fmt.Sprintf("%s in %s.%s[%d] t=%d: %s", r.Kind, r.Func, r.Block, r.Index, r.Time, r.Msg)
}

// Collector accumulates reports, keeping the earliest report per site.
type Collector struct {
	bySite map[string]*Report
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{bySite: make(map[string]*Report)}
}

// Add records the report unless an earlier report exists for the same
// site; it returns true when the report was new.
func (c *Collector) Add(r *Report) bool {
	key := r.Site()
	if old, ok := c.bySite[key]; ok {
		if r.Time < old.Time {
			c.bySite[key] = r
		}
		return false
	}
	c.bySite[key] = r
	return true
}

// Len returns the number of distinct bug sites.
func (c *Collector) Len() int { return len(c.bySite) }

// Reports returns the distinct reports ordered by detection time.
func (c *Collector) Reports() []*Report {
	out := make([]*Report, 0, len(c.bySite))
	for _, r := range c.bySite {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].Site() < out[j].Site()
	})
	return out
}

// CountByKind returns how many distinct sites exist per kind.
func (c *Collector) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	for _, r := range c.bySite {
		out[r.Kind]++
	}
	return out
}
