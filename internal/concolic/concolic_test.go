package concolic

import (
	"math/rand"
	"testing"

	"pbse/internal/interp"
	"pbse/internal/ir"
	"pbse/internal/symex"
)

// loopProg: n = input[0]; loop n times; then exit — one symbolic branch
// per loop-head evaluation.
func loopProg(t *testing.T) *ir.Program {
	t.Helper()
	p := ir.NewProgram("loop")
	fb := p.NewFunc("main", 0)
	entry := fb.NewBlock("entry")
	head := fb.NewBlock("head")
	body := fb.NewBlock("body")
	deep := fb.NewBlock("deep")

	i := fb.NewReg()
	n := fb.NewReg()
	ip := entry.Input()
	nv := entry.Load(ip, 0, 8)
	n32 := entry.Zext(nv, 32)
	entry.MovTo(n, n32, 32)
	entry.ConstTo(i, 0, 32)
	entry.Jmp(head.Blk())

	c := head.Cmp(ir.Ult, i, n, 32)
	head.Br(c, body.Blk(), deep.Blk())

	ni := body.AddImm(i, 1, 32)
	body.MovTo(i, ni, 32)
	body.Jmp(head.Blk())

	deep.Exit()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConcolicFollowsSeedPath(t *testing.T) {
	p := loopProg(t)
	seed := []byte{10}
	ex := symex.NewExecutor(p, symex.Options{InputSize: 1})
	res, err := Run(ex, seed, Options{Interval: 16, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exited {
		t.Error("seed path should exit cleanly")
	}

	// cross-validate BBV totals against the concrete interpreter
	wantEntries := 0
	interp.New(p, seed, interp.Options{Tracer: func(*ir.Block, int64) { wantEntries++ }}).Run()
	gotEntries := 0
	for _, bbv := range res.BBVs {
		for _, c := range bbv.Counts {
			gotEntries += c
		}
	}
	if gotEntries != wantEntries {
		t.Errorf("BBV total entries = %d, interp counted %d", gotEntries, wantEntries)
	}
	if len(res.Trace) != wantEntries {
		t.Errorf("trace length = %d, want %d", len(res.Trace), wantEntries)
	}

	// one seedState per loop-head evaluation (11: i=0..10)
	if len(res.SeedStates) != 11 {
		t.Errorf("seedStates = %d, want 11", len(res.SeedStates))
	}
	for _, s := range res.SeedStates {
		if s.SeedForkBlockID < 0 {
			t.Errorf("seedState missing fork point")
		}
		if s.NumConstraints() == 0 {
			t.Errorf("seedState has no constraints")
		}
	}
}

func TestBBVCoverageMonotone(t *testing.T) {
	p := loopProg(t)
	ex := symex.NewExecutor(p, symex.Options{InputSize: 1})
	res, err := Run(ex, []byte{50}, Options{Interval: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BBVs) < 3 {
		t.Fatalf("expected several BBVs, got %d", len(res.BBVs))
	}
	prev := 0.0
	for i, bbv := range res.BBVs {
		if bbv.Coverage < prev {
			t.Errorf("coverage decreased at BBV %d: %f -> %f", i, prev, bbv.Coverage)
		}
		prev = bbv.Coverage
		if bbv.Index != i {
			t.Errorf("BBV index %d != position %d", bbv.Index, i)
		}
	}
	if prev <= 0 || prev > 1 {
		t.Errorf("final coverage fraction %f out of range", prev)
	}
}

func TestSeedStateExploresNotTakenSide(t *testing.T) {
	// magic check: seed misses the magic byte; the seedState recorded at
	// the branch must reach the "ok" block when stepped symbolically.
	p := ir.NewProgram("magic")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	okB := fb.NewBlock("ok")
	badB := fb.NewBlock("bad")
	ip := b.Input()
	v := b.Load(ip, 0, 8)
	c := b.CmpImm(ir.Eq, v, 0x7f, 8)
	b.Br(c, okB.Blk(), badB.Blk())
	okB.Exit()
	badB.Exit()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}

	ex := symex.NewExecutor(p, symex.Options{InputSize: 1})
	res, err := Run(ex, []byte{0x00}, Options{Interval: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SeedStates) != 1 {
		t.Fatalf("seedStates = %d, want 1", len(res.SeedStates))
	}
	okID := p.Func("main").Blocks[1].ID
	if ex.Covered(okID) {
		t.Fatal("ok block covered during concolic run already")
	}
	// step the seedState symbolically
	rng := rand.New(rand.NewSource(1))
	s, _ := symex.NewSearcher(symex.SearchDFS, ex, rng)
	s.Add(res.SeedStates[0])
	(&symex.Runner{Ex: ex, Search: s}).Run(ex.Clock() + 10_000)
	if !ex.Covered(okID) {
		t.Error("seedState did not reach the not-taken block")
	}
}

func TestInfeasibleSeedStateDies(t *testing.T) {
	// branch condition duplicated: second occurrence's not-taken side is
	// infeasible; its seedState must terminate as infeasible when stepped
	p := ir.NewProgram("dup")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	mid := fb.NewBlock("mid")
	okB := fb.NewBlock("ok")
	badB := fb.NewBlock("bad")
	dead := fb.NewBlock("dead")
	v := fb.NewReg()
	ip := b.Input()
	lv := b.Load(ip, 0, 8)
	b.MovTo(v, lv, 8)
	c1 := b.CmpImm(ir.Ult, v, 10, 8)
	b.Br(c1, mid.Blk(), badB.Blk())
	c2 := mid.CmpImm(ir.Ult, v, 10, 8) // same condition again
	mid.Br(c2, okB.Blk(), dead.Blk())
	okB.Exit()
	badB.Exit()
	dead.Exit()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}

	ex := symex.NewExecutor(p, symex.Options{InputSize: 1})
	res, err := Run(ex, []byte{5}, Options{Interval: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SeedStates) != 2 {
		t.Fatalf("seedStates = %d, want 2", len(res.SeedStates))
	}
	// the second seedState (v>=10 while v<10 on path) is infeasible
	rng := rand.New(rand.NewSource(1))
	s, _ := symex.NewSearcher(symex.SearchBFS, ex, rng)
	for _, ss := range res.SeedStates {
		s.Add(ss)
	}
	(&symex.Runner{Ex: ex, Search: s}).Run(ex.Clock() + 10_000)
	deadID := p.Func("main").Blocks[4].ID
	if ex.Covered(deadID) {
		t.Error("infeasible seedState explored an impossible block")
	}
	badID := p.Func("main").Blocks[3].ID
	if !ex.Covered(badID) {
		t.Error("feasible seedState did not reach its block")
	}
}

func TestTraceTimesIncrease(t *testing.T) {
	p := loopProg(t)
	ex := symex.NewExecutor(p, symex.Options{InputSize: 1})
	res, err := Run(ex, []byte{20}, Options{Interval: 16, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Time <= res.Trace[i-1].Time {
			t.Fatalf("trace times not increasing at %d", i)
		}
	}
}

func TestMaxStepsGuard(t *testing.T) {
	// input-independent infinite loop: concolic must stop at MaxSteps
	p := ir.NewProgram("spin")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	b.Jmp(b.Blk())
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	ex := symex.NewExecutor(p, symex.Options{InputSize: 1})
	res, err := Run(ex, []byte{0}, Options{Interval: 64, MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exited {
		t.Error("spin loop cannot exit")
	}
	if res.Steps < 1000 || res.Steps > 2000 {
		t.Errorf("steps = %d, want ~1000", res.Steps)
	}
}
