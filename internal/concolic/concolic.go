// Package concolic implements Algorithm 2 of the pbSE paper: lockstep
// concrete/symbolic execution of a seed input, gathering basic block
// vectors (BBVs) per virtual-time interval and recording a seedState at
// every symbolic fork point along the seed path.
package concolic

import (
	"fmt"

	"pbse/internal/ir"
	"pbse/internal/symex"
)

// BBV is one basic block vector: per-block entry counts over one gathering
// interval, plus the running code-coverage fraction at gathering time (the
// extra element §III-B1 adds to make trap phases separable).
type BBV struct {
	Index    int
	Time     int64 // virtual time at the end of the interval
	Counts   map[int]int
	Coverage float64
}

// TracePoint is one basic-block entry event (for Fig 1/5-style plots).
type TracePoint struct {
	Time    int64
	BlockID int
}

// Options configure a concolic run.
type Options struct {
	// Interval is the BBV gathering interval in executed instructions.
	// Default 4096.
	Interval int64
	// MaxSteps bounds the run (the seed path is finite, but input-
	// independent infinite loops would otherwise hang). Default 20M.
	MaxSteps int64
	// RecordTrace keeps every block entry for plotting.
	RecordTrace bool
}

// Result is the outcome of one concolic execution.
type Result struct {
	BBVs       []BBV
	SeedStates []*symex.State
	Trace      []TracePoint
	Start      int64 // executor clock when the run began
	Steps      int64 // virtual cost of the run ("c-time" in Table I)
	Exited     bool  // seed path reached a clean exit
}

// Run executes the program concolically on seed using ex. The executor
// must be freshly created (or at least hold no live states); its clock,
// coverage and context are shared with subsequent symbolic execution, so
// pbSE runs concolic + symbolic on one executor.
func Run(ex *symex.Executor, seed []byte, opts Options) (*Result, error) {
	if opts.Interval == 0 {
		opts.Interval = 4096
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 20_000_000
	}

	res := &Result{Start: ex.Clock()}
	ex.EnableConcolic(seed, func(s *symex.State) {
		res.SeedStates = append(res.SeedStates, s)
	})
	defer ex.DisableConcolic()

	start := ex.Clock()
	total := len(ex.Prog.AllBlocks)
	covered := make([]bool, total)
	numCovered := 0

	cur := BBV{Index: 0, Counts: make(map[int]int)}
	nextFlush := start + opts.Interval

	flush := func(now int64) {
		cur.Time = now
		cur.Coverage = float64(numCovered) / float64(total)
		res.BBVs = append(res.BBVs, cur)
		cur = BBV{Index: cur.Index + 1, Counts: make(map[int]int, len(cur.Counts))}
	}

	st := ex.NewEntryState()
	ex.BlockHook = func(s *symex.State, b *ir.Block, clock int64) {
		if s != st {
			return // seedStates are not part of the seed path
		}
		cur.Counts[b.ID]++
		if !covered[b.ID] {
			covered[b.ID] = true
			numCovered++
		}
		if opts.RecordTrace {
			res.Trace = append(res.Trace, TracePoint{Time: clock - start, BlockID: b.ID})
		}
	}
	defer func() { ex.BlockHook = nil }()

	for {
		if ex.Clock()-start >= opts.MaxSteps {
			break
		}
		r := ex.StepBlock(st)
		for ex.Clock() >= nextFlush {
			flush(ex.Clock() - start)
			nextFlush += opts.Interval
		}
		if r.Terminated {
			res.Exited = r.Reason == symex.TermExit
			break
		}
	}
	if len(cur.Counts) > 0 {
		flush(ex.Clock() - start)
	}
	res.Steps = ex.Clock() - start
	if len(res.BBVs) == 0 {
		return nil, fmt.Errorf("concolic: seed produced no BBVs (program exited in under one interval; lower Options.Interval)")
	}
	return res, nil
}
