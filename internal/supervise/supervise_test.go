package supervise

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastOpts keeps watchdog tests snappy: a turn has 40ms before the
// interrupt and another 40ms of grace before it is declared hung.
func fastOpts() Options {
	return Options{Enabled: true, IslandDeadline: 40 * time.Millisecond, HangGrace: 40 * time.Millisecond}
}

func TestTurnOK(t *testing.T) {
	t.Parallel()
	s := New(fastOpts())
	ran := false
	out, msg, h := s.Turn(func() { ran = true }, func() { t.Error("abort called on a fast turn") })
	if out != OK || msg != "" || !ran {
		t.Fatalf("got (%v, %q, ran=%v), want (ok, \"\", true)", out, msg, ran)
	}
	if !h.Done() {
		t.Error("handle not done after OK turn")
	}
	if st := s.Stats(); st != (SupStats{}) {
		t.Errorf("clean turn touched counters: %+v", st)
	}
}

func TestTurnCrashed(t *testing.T) {
	t.Parallel()
	s := New(fastOpts())
	out, msg, h := s.Turn(func() { panic("boom at step 7") }, func() {})
	if out != Crashed {
		t.Fatalf("outcome = %v, want crashed", out)
	}
	if !strings.Contains(msg, "boom at step 7") {
		t.Errorf("panic message lost: %q", msg)
	}
	if m, ok := h.Crash(); !ok || !strings.Contains(m, "boom") {
		t.Errorf("handle crash = (%q, %v)", m, ok)
	}
	if st := s.Stats(); st.Crashes != 1 || st.WatchdogTrips != 0 || st.Hangs != 0 {
		t.Errorf("stats = %+v, want exactly one crash", st)
	}
}

func TestTurnInterrupted(t *testing.T) {
	t.Parallel()
	s := New(fastOpts())
	var stop atomic.Bool
	out, _, _ := s.Turn(func() {
		for !stop.Load() {
			time.Sleep(time.Millisecond)
		}
	}, func() { stop.Store(true) })
	if out != Interrupted {
		t.Fatalf("outcome = %v, want interrupted", out)
	}
	if st := s.Stats(); st.WatchdogTrips != 1 || st.Hangs != 0 || st.Crashes != 0 {
		t.Errorf("stats = %+v, want exactly one watchdog trip", st)
	}
}

func TestTurnHung(t *testing.T) {
	t.Parallel()
	s := New(fastOpts())
	release := make(chan struct{})
	out, _, h := s.Turn(func() { <-release }, func() {}) // ignores the abort
	if out != Hung {
		t.Fatalf("outcome = %v, want hung", out)
	}
	if h.Done() {
		t.Fatal("abandoned goroutine reported done while still parked")
	}
	if h.Wait(time.Millisecond) {
		t.Fatal("Wait returned before the goroutine did")
	}
	close(release)
	if !h.Wait(5 * time.Second) {
		t.Fatal("goroutine never reported done after release")
	}
	if _, crashed := h.Crash(); crashed {
		t.Error("clean late return reported a crash")
	}
	if st := s.Stats(); st.Hangs != 1 || st.WatchdogTrips != 1 {
		t.Errorf("stats = %+v, want one trip and one hang", st)
	}
}

// TestTurnLateCrash: a turn that hangs past the grace window and then
// panics must surface the crash through the handle so limbo
// reintegration can count it.
func TestTurnLateCrash(t *testing.T) {
	t.Parallel()
	s := New(fastOpts())
	release := make(chan struct{})
	out, _, h := s.Turn(func() { <-release; panic("late boom") }, func() {})
	if out != Hung {
		t.Fatalf("outcome = %v, want hung", out)
	}
	close(release)
	if !h.Wait(5 * time.Second) {
		t.Fatal("goroutine never finished")
	}
	if msg, crashed := h.Crash(); !crashed || !strings.Contains(msg, "late boom") {
		t.Errorf("late panic lost: (%q, %v)", msg, crashed)
	}
}

func TestTurnSync(t *testing.T) {
	t.Parallel()
	s := New(fastOpts())
	if out, msg := s.TurnSync(func() {}); out != OK || msg != "" {
		t.Fatalf("clean TurnSync = (%v, %q)", out, msg)
	}
	out, msg := s.TurnSync(func() { panic("inline boom") })
	if out != Crashed || !strings.Contains(msg, "inline boom") {
		t.Fatalf("TurnSync panic = (%v, %q)", out, msg)
	}
	if st := s.Stats(); st.Crashes != 1 {
		t.Errorf("stats = %+v, want one crash", st)
	}
}

func TestNoWatchdogWhenDisabled(t *testing.T) {
	t.Parallel()
	o := fastOpts()
	o.IslandDeadline = -1
	s := New(o)
	out, _, _ := s.Turn(func() { time.Sleep(150 * time.Millisecond) }, func() {
		t.Error("abort called with the watchdog disabled")
	})
	if out != OK {
		t.Fatalf("outcome = %v, want ok", out)
	}
	if st := s.Stats(); st.WatchdogTrips != 0 {
		t.Errorf("disabled watchdog tripped: %+v", st)
	}
}

func TestLadderLevels(t *testing.T) {
	t.Parallel()
	s := New(Options{Enabled: true, MaxIslandRestarts: 3})
	isl := s.Island(0)
	if isl.Level() != LevelFull || isl.SliceScale() != 1 {
		t.Fatalf("fresh island = (%v, %v), want (full, 1)", isl.Level(), isl.SliceScale())
	}
	want := []Level{LevelHalf, LevelConcretize, LevelConcretize, LevelQuarantine}
	base := []float64{0.5, 0.25, 0.25, 0.25}
	for i, lvl := range want {
		isl.Fault()
		if isl.Level() != lvl {
			t.Fatalf("after %d faults Level = %v, want %v", i+1, isl.Level(), lvl)
		}
		lo, hi := base[i]*0.75, base[i]*1.25
		if sc := isl.SliceScale(); sc < lo || sc > hi {
			t.Errorf("after %d faults SliceScale = %v, want in [%v, %v]", i+1, sc, lo, hi)
		}
	}
	// Gradual recovery: one Success steps down one rung, never to zero.
	isl.Success()
	if isl.Failures() != 3 || isl.Level() != LevelConcretize {
		t.Fatalf("after recovery failures=%d level=%v, want 3/concretize-only", isl.Failures(), isl.Level())
	}
	for i := 0; i < 10; i++ {
		isl.Success()
	}
	if isl.Failures() != 0 || isl.Level() != LevelFull || isl.SliceScale() != 1 {
		t.Errorf("fully recovered island not back at full slice: failures=%d", isl.Failures())
	}
}

func TestBackoffLadder(t *testing.T) {
	t.Parallel()
	s := New(Options{Enabled: true, MaxIslandRestarts: 100})
	isl := s.Island(2)
	takeAll := func() int {
		n := 0
		for isl.TakeSkip() {
			n++
		}
		return n
	}
	if takeAll() != 0 {
		t.Fatal("fresh island has pending backoff")
	}
	// 1, 2, 4, 8 rounds, then capped at 8.
	for i, want := range []int{1, 2, 4, 8, 8, 8} {
		isl.Fault()
		if got := takeAll(); got != want {
			t.Errorf("fault %d: backoff = %d rounds, want %d", i+1, got, want)
		}
	}
	// Success clears any pending backoff outright.
	isl.Fault()
	if !isl.TakeSkip() {
		t.Fatal("no backoff after fault")
	}
	isl.Success()
	if isl.TakeSkip() {
		t.Error("backoff survived a successful turn")
	}
}

// TestJitterDeterministic: haircuts are a pure function of (seed, island
// id, fault history) — and drawing SliceScale at LevelFull must not
// consume randomness, or fault-free rounds would perturb later jitter.
func TestJitterDeterministic(t *testing.T) {
	t.Parallel()
	draw := func(fullDraws int) []float64 {
		s := New(Options{Enabled: true, Seed: 42, MaxIslandRestarts: 10})
		isl := s.Island(3)
		for i := 0; i < fullDraws; i++ {
			if isl.SliceScale() != 1 {
				t.Fatal("LevelFull scale != 1")
			}
		}
		var out []float64
		for i := 0; i < 4; i++ {
			isl.Fault()
			out = append(out, isl.SliceScale())
		}
		return out
	}
	a, b := draw(0), draw(50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter sequence depends on fault-free draws: %v vs %v", a, b)
		}
	}
	// Different islands must not resynchronize their haircuts.
	s := New(Options{Enabled: true, Seed: 42, MaxIslandRestarts: 10})
	i1, i2 := s.Island(1), s.Island(2)
	i1.Fault()
	i2.Fault()
	if i1.SliceScale() == i2.SliceScale() {
		t.Error("islands 1 and 2 drew identical jitter")
	}
}

func TestStatsMergeAndFaults(t *testing.T) {
	t.Parallel()
	all := SupStats{
		Crashes: 1, Hangs: 2, WatchdogTrips: 3, Restarts: 4, BackoffSkips: 5,
		DegradedRounds: 6, RequeuedStates: 7, QuarantinedIslands: 8,
		QuarantinedStates: 9, FaultCheckpoints: 10, StoreFaults: 11, ProcessRestarts: 12,
	}
	var got SupStats
	got.Merge(all)
	got.Merge(all)
	want := SupStats{
		Crashes: 2, Hangs: 4, WatchdogTrips: 6, Restarts: 8, BackoffSkips: 10,
		DegradedRounds: 12, RequeuedStates: 14, QuarantinedIslands: 16,
		QuarantinedStates: 18, FaultCheckpoints: 20, StoreFaults: 22, ProcessRestarts: 24,
	}
	if got != want {
		t.Fatalf("merge twice = %+v, want %+v", got, want)
	}
	if all.Faults() != 1+2+3 {
		t.Errorf("Faults() = %d, want 6", all.Faults())
	}
}

func TestDefaultsAndNilAdd(t *testing.T) {
	t.Parallel()
	o := New(Options{Enabled: true}).Opts()
	if o.IslandDeadline != 30*time.Second || o.HangGrace != 30*time.Second ||
		o.MaxIslandRestarts != 3 || o.CheckpointEvery != 1 {
		t.Errorf("defaults = %+v", o)
	}
	var s *Supervisor
	s.Add(SupStats{Crashes: 1}) // must not panic
}
