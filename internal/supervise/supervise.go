// Package supervise contains the campaign supervisor's fault-isolation
// primitives: a recover+watchdog turn runner, per-island retry ladders
// with exponential backoff and jittered budget haircuts, and the
// SupStats counters that make every contained fault auditable.
//
// The package is deliberately scheduler-agnostic — it knows nothing
// about phases, islands' executors, or checkpoints. internal/pbse owns
// the policy (what to requeue, when to checkpoint, how to merge
// survivors); this package owns the mechanics (containment, timing,
// backoff arithmetic), so the two can be tested independently.
//
// Determinism contract: when no fault fires, supervision is inert — no
// ladder advances, no jitter rng is drawn, no turn is skipped — so a
// supervised run is bit-identical to an unsupervised one. Once a fault
// fires the contract weakens to "the campaign completes with accurate
// counters": wall-clock watchdogs are inherently racy against real time.
package supervise

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Options configure a campaign supervisor.
type Options struct {
	// Enabled turns supervision on. The zero Options (or a nil pointer
	// wherever one is plumbed) leaves the schedulers exactly as they
	// were.
	Enabled bool
	// IslandDeadline is the soft wall-clock watchdog per island turn:
	// when it expires the turn is asked to wind down cooperatively
	// (Executor.Interrupt). Default 30s; negative disables the watchdog.
	IslandDeadline time.Duration
	// HangGrace is how long past the soft deadline a turn may keep
	// running before it is declared hung and abandoned. Default
	// IslandDeadline.
	HangGrace time.Duration
	// MaxIslandRestarts bounds the retry ladder: an island that faults
	// more than this many consecutive times — or sits abandoned in limbo
	// for more than this many rounds — is quarantined. Default 3.
	MaxIslandRestarts int
	// CheckpointEvery is the auto-checkpoint cadence in scheduler
	// rounds. Default 1 (every round barrier, matching unsupervised
	// persistence); any fault forces a checkpoint at the next barrier
	// regardless of cadence.
	CheckpointEvery int64
	// Seed drives the backoff jitter rngs. The jitter streams are only
	// ever drawn after a fault, so the seed does not influence fault-free
	// runs.
	Seed int64
}

// withDefaults fills the zero-value fields.
func (o Options) withDefaults() Options {
	if o.IslandDeadline == 0 {
		o.IslandDeadline = 30 * time.Second
	}
	if o.HangGrace <= 0 {
		o.HangGrace = o.IslandDeadline
	}
	if o.MaxIslandRestarts <= 0 {
		o.MaxIslandRestarts = 3
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 1
	}
	return o
}

// SupStats count everything the supervisor contained or degraded. All
// fields are totals over the campaign; checkpoints carry them across
// process restarts.
type SupStats struct {
	Crashes            int64 // island turns that panicked and were contained
	Hangs              int64 // island turns abandoned past deadline+grace
	WatchdogTrips      int64 // soft deadline expiries (cooperative interrupt requested)
	Restarts           int64 // turns granted to an island with a non-empty fault history
	BackoffSkips       int64 // rounds an island sat out under exponential backoff
	DegradedRounds     int64 // rounds where at least one island faulted, skipped, or sat in limbo
	RequeuedStates     int64 // states returned to their pool after a contained crash
	QuarantinedIslands int64 // islands removed by the ladder or abandoned for good
	QuarantinedStates  int64 // states lost to island quarantine
	FaultCheckpoints   int64 // checkpoints forced off-cadence by a fault
	StoreFaults        int64 // store I/O failures tolerated instead of failing the run
	ProcessRestarts    int64 // process re-execs performed by cmd/pbse -supervise
}

// Merge adds o's counters into s.
func (s *SupStats) Merge(o SupStats) {
	s.Crashes += o.Crashes
	s.Hangs += o.Hangs
	s.WatchdogTrips += o.WatchdogTrips
	s.Restarts += o.Restarts
	s.BackoffSkips += o.BackoffSkips
	s.DegradedRounds += o.DegradedRounds
	s.RequeuedStates += o.RequeuedStates
	s.QuarantinedIslands += o.QuarantinedIslands
	s.QuarantinedStates += o.QuarantinedStates
	s.FaultCheckpoints += o.FaultCheckpoints
	s.StoreFaults += o.StoreFaults
	s.ProcessRestarts += o.ProcessRestarts
}

// Faults is the total number of contained island faults.
func (s SupStats) Faults() int64 { return s.Crashes + s.Hangs + s.WatchdogTrips }

// Outcome classifies one supervised turn.
type Outcome int

const (
	// OK: the turn ran to completion.
	OK Outcome = iota
	// Crashed: the turn panicked; the panic was contained at the turn
	// boundary.
	Crashed
	// Interrupted: the soft watchdog fired and the turn wound down
	// cooperatively within the grace window.
	Interrupted
	// Hung: the turn ignored the interrupt past the grace window and its
	// goroutine was abandoned. The island's executor must not be touched
	// until the returned Handle reports Done.
	Hung
)

func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Crashed:
		return "crashed"
	case Interrupted:
		return "interrupted"
	case Hung:
		return "hung"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Handle tracks a turn goroutine, in particular one that outlived its
// watchdog: the scheduler parks the island in limbo and polls Done at
// round barriers until the goroutine finally returns (or the island is
// quarantined).
type Handle struct {
	done     chan struct{}
	panicked atomic.Bool
	panicMsg atomic.Value // string
}

// Done reports whether the turn goroutine has returned.
func (h *Handle) Done() bool {
	select {
	case <-h.done:
		return true
	default:
		return false
	}
}

// Wait blocks up to d for the turn goroutine to return.
func (h *Handle) Wait(d time.Duration) bool {
	if d <= 0 {
		return h.Done()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-h.done:
		return true
	case <-t.C:
		return false
	}
}

// Crash reports whether the (finished) turn ended in a contained panic,
// and its message.
func (h *Handle) Crash() (string, bool) {
	if !h.panicked.Load() {
		return "", false
	}
	msg, _ := h.panicMsg.Load().(string)
	return msg, true
}

// Supervisor is the fault-isolation core shared by one campaign's
// schedulers. All methods are safe for concurrent use by the worker
// goroutines.
type Supervisor struct {
	opts Options

	mu      sync.Mutex
	stats   SupStats
	islands map[int]*Island
}

// New builds a supervisor with o's policy (defaults applied).
func New(o Options) *Supervisor {
	return &Supervisor{opts: o.withDefaults(), islands: make(map[int]*Island)}
}

// Opts returns the effective (defaulted) options.
func (s *Supervisor) Opts() Options { return s.opts }

// Stats snapshots the counters.
func (s *Supervisor) Stats() SupStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Add folds delta into the counters.
func (s *Supervisor) Add(delta SupStats) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.stats.Merge(delta)
	s.mu.Unlock()
}

// Island returns id's retry ladder, creating it on first use. The
// ladder's jitter rng is seeded from Opts().Seed and id, so haircuts are
// reproducible given the same fault sequence.
func (s *Supervisor) Island(id int) *Island {
	s.mu.Lock()
	defer s.mu.Unlock()
	isl, ok := s.islands[id]
	if !ok {
		isl = &Island{
			sup: s,
			id:  id,
			// -0x61c8864680b583eb is 0x9e3779b97f4a7c15 (the 64-bit golden
			// ratio) as an int64 bit pattern.
			rng: rand.New(rand.NewSource(s.opts.Seed ^ (int64(id)+1)*-0x61c8864680b583eb)),
		}
		s.islands[id] = isl
	}
	return isl
}

// Turn runs fn on its own goroutine under a recover boundary and a
// wall-clock watchdog. At the soft deadline abort is invoked once to
// request a cooperative wind-down; if fn still has not returned after
// the grace window, Turn gives up and reports Hung — the goroutine is
// abandoned (it keeps running; the caller must quarantine whatever it
// may still mutate until the Handle reports Done). Panics inside fn are
// contained and reported as Crashed with the panic message.
func (s *Supervisor) Turn(fn func(), abort func()) (Outcome, string, *Handle) {
	h := &Handle{done: make(chan struct{})}
	go func() {
		defer close(h.done)
		defer func() {
			if p := recover(); p != nil {
				h.panicMsg.Store(fmt.Sprint(p))
				h.panicked.Store(true)
			}
		}()
		fn()
	}()

	finish := func() (Outcome, string, *Handle) {
		if msg, crashed := h.Crash(); crashed {
			s.Add(SupStats{Crashes: 1})
			return Crashed, msg, h
		}
		return OK, "", h
	}

	if s.opts.IslandDeadline < 0 {
		<-h.done
		return finish()
	}
	soft := time.NewTimer(s.opts.IslandDeadline)
	defer soft.Stop()
	select {
	case <-h.done:
		return finish()
	case <-soft.C:
	}

	// Soft deadline expired: ask the turn to wind down and give it the
	// grace window.
	s.Add(SupStats{WatchdogTrips: 1})
	abort()
	grace := time.NewTimer(s.opts.HangGrace)
	defer grace.Stop()
	select {
	case <-h.done:
		if msg, crashed := h.Crash(); crashed {
			s.Add(SupStats{Crashes: 1})
			return Crashed, msg, h
		}
		return Interrupted, "", h
	case <-grace.C:
		s.Add(SupStats{Hangs: 1})
		return Hung, "", h
	}
}

// TurnSync runs fn inline under the recover boundary alone — the
// containment used by the single-worker scheduler, where the shared
// executor cannot be abandoned to a runaway goroutine (see DESIGN.md
// §11 for what W=1 supervision does and does not cover).
func (s *Supervisor) TurnSync(fn func()) (outcome Outcome, panicMsg string) {
	outcome = OK
	defer func() {
		if p := recover(); p != nil {
			s.Add(SupStats{Crashes: 1})
			outcome, panicMsg = Crashed, fmt.Sprint(p)
		}
	}()
	fn()
	return
}

// Level is an island's rung on the retry ladder, deciding how its next
// turn is degraded.
type Level int

const (
	// LevelFull: no fault history — full slice, no degradation.
	LevelFull Level = iota
	// LevelHalf: one consecutive fault — half slice (jittered).
	LevelHalf
	// LevelConcretize: repeated faults — quarter slice (jittered) and
	// concretize-only stepping (no forking, branch directions pinned to
	// a concrete model), the cheapest mode that still makes progress.
	LevelConcretize
	// LevelQuarantine: the ladder is exhausted; the island is removed
	// and its states are terminated.
	LevelQuarantine
)

func (l Level) String() string {
	switch l {
	case LevelFull:
		return "full"
	case LevelHalf:
		return "half-slice"
	case LevelConcretize:
		return "concretize-only"
	case LevelQuarantine:
		return "quarantine"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Island is one island's retry/backoff ladder. It is owned by whichever
// worker runs the island's turn — the round barrier orders accesses, so
// no internal locking is needed.
type Island struct {
	sup      *Supervisor
	id       int
	failures int   // consecutive faults
	skip     int64 // backoff rounds remaining
	rng      *rand.Rand
}

// Failures is the island's consecutive-fault count.
func (i *Island) Failures() int { return i.failures }

// Level maps the fault history to a ladder rung.
func (i *Island) Level() Level {
	switch {
	case i.failures == 0:
		return LevelFull
	case i.failures > i.sup.opts.MaxIslandRestarts:
		return LevelQuarantine
	case i.failures == 1:
		return LevelHalf
	default:
		return LevelConcretize
	}
}

// SliceScale is the budget haircut for the island's next turn: 1 at
// LevelFull, ~0.5 at LevelHalf, ~0.25 at LevelConcretize, each jittered
// ±25% so retried islands do not resynchronize their expensive work.
// The rng is only drawn when a haircut applies, keeping fault-free runs
// free of supervision state.
func (i *Island) SliceScale() float64 {
	var base float64
	switch i.Level() {
	case LevelHalf:
		base = 0.5
	case LevelConcretize, LevelQuarantine:
		base = 0.25
	default:
		return 1
	}
	return base * (0.75 + 0.5*i.rng.Float64())
}

// Fault records one contained fault: the ladder climbs a rung and the
// island earns an exponential backoff (1, 2, 4, ... rounds, capped at 8)
// before its next turn.
func (i *Island) Fault() {
	i.failures++
	skip := int64(1) << (i.failures - 1)
	if skip > 8 {
		skip = 8
	}
	i.skip = skip
}

// Success records a clean turn: the ladder descends one rung (gradual
// recovery — an island that crashed twice must earn its full slice
// back) and any pending backoff is cleared.
func (i *Island) Success() {
	if i.failures > 0 {
		i.failures--
	}
	i.skip = 0
}

// TakeSkip consumes one backoff round; true means the island sits this
// round out.
func (i *Island) TakeSkip() bool {
	if i.skip > 0 {
		i.skip--
		return true
	}
	return false
}
