package pbse

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pbse/internal/store"
)

// absintPoint is one campaign measurement of the static-pruning ablation.
type absintPoint struct {
	Queries      int64 `json:"queries"`
	SATRuns      int64 `json:"sat_runs"`
	StaticPrunes int64 `json:"static_prunes"`
	SharedHits   int64 `json:"shared_hits"`
	Covered      int   `json:"covered"`
	Bugs         int   `json:"bugs"`
}

// absintSweep records one driver's pass-on vs pass-off comparison, cold
// (fresh store) and warm (second run over the same store, so the
// cross-run solver cache is populated).
type absintSweep struct {
	Driver        string      `json:"driver"`
	Budget        int64       `json:"budget"`
	OnCold        absintPoint `json:"on_cold"`
	OnWarm        absintPoint `json:"on_warm"`
	OffCold       absintPoint `json:"off_cold"`
	OffWarm       absintPoint `json:"off_warm"`
	SATDropPct    float64     `json:"sat_drop_pct"`    // cold, on vs off
	QueryDropPct  float64     `json:"query_drop_pct"`  // cold, on vs off
	ResultsAgree  bool        `json:"results_agree"`   // coverage+bugs identical on vs off
	WarmSATRatio  float64     `json:"warm_sat_ratio"`  // on_warm / on_cold SAT runs
	StaticOffZero bool        `json:"static_off_zero"` // control arm reports no prunes
}

func absintRun(b *testing.B, driver string, disable bool, dir string) absintPoint {
	b.Helper()
	tgt, err := TargetByDriver(driver)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := tgt.Build()
	if err != nil {
		b.Fatal(err)
	}
	seed := tgt.GenSeed(rand.New(rand.NewSource(42)), 576)
	st, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	res, err := Run(prog, seed,
		Options{Budget: 400_000, Seed: 42, DisableAbsint: disable, Store: st, StoreLabel: driver},
		ExecutorOptions{InputSize: len(seed)})
	if err != nil {
		b.Fatal(err)
	}
	return absintPoint{
		Queries:      res.SolverStats.Queries,
		SATRuns:      res.SolverStats.SATRuns,
		StaticPrunes: res.SolverStats.StaticPrunes,
		SharedHits:   res.SolverStats.SharedHits,
		Covered:      res.Covered,
		Bugs:         len(res.Bugs),
	}
}

// emitAbsintSweep measures the driver with the abstract-interpretation
// pass on and off, cold and warm, and merges the sweep into
// BENCH_absint.json — the artifact CI uploads alongside the parallel
// scaling numbers.
func emitAbsintSweep(b *testing.B, benchName, driver string) {
	b.Helper()
	base := b.TempDir()
	onDir := filepath.Join(base, "on")
	offDir := filepath.Join(base, "off")

	sweep := absintSweep{Driver: driver, Budget: 400_000}
	sweep.OnCold = absintRun(b, driver, false, onDir)
	sweep.OnWarm = absintRun(b, driver, false, onDir)
	sweep.OffCold = absintRun(b, driver, true, offDir)
	sweep.OffWarm = absintRun(b, driver, true, offDir)

	if sweep.OffCold.SATRuns > 0 {
		sweep.SATDropPct = 100 * float64(sweep.OffCold.SATRuns-sweep.OnCold.SATRuns) /
			float64(sweep.OffCold.SATRuns)
	}
	if sweep.OffCold.Queries > 0 {
		sweep.QueryDropPct = 100 * float64(sweep.OffCold.Queries-sweep.OnCold.Queries) /
			float64(sweep.OffCold.Queries)
	}
	if sweep.OnCold.SATRuns > 0 {
		sweep.WarmSATRatio = float64(sweep.OnWarm.SATRuns) / float64(sweep.OnCold.SATRuns)
	}
	sweep.ResultsAgree = sweep.OnCold.Covered == sweep.OffCold.Covered &&
		sweep.OnCold.Bugs == sweep.OffCold.Bugs
	sweep.StaticOffZero = sweep.OffCold.StaticPrunes == 0 && sweep.OffWarm.StaticPrunes == 0

	b.ReportMetric(float64(sweep.OnCold.StaticPrunes), "static-prunes")
	b.ReportMetric(sweep.SATDropPct, "sat-drop-pct")

	const path = "BENCH_absint.json"
	doc := make(map[string]absintSweep)
	if raw, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(raw, &doc) // corrupt file: start over
	}
	doc[benchName] = sweep
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAbsintReadelf and BenchmarkAbsintGif2tiff record the static
// pruning pass's solver-traffic effect on the two acceptance targets.
func BenchmarkAbsintReadelf(b *testing.B) {
	emitAbsintSweep(b, "BenchmarkAbsintReadelf", "readelf")
	for i := 0; i < b.N; i++ {
	}
}

func BenchmarkAbsintGif2tiff(b *testing.B) {
	emitAbsintSweep(b, "BenchmarkAbsintGif2tiff", "gif2tiff")
	for i := 0; i < b.N; i++ {
	}
}
