// Coverage: compare every KLEE search strategy against pbSE on the
// readelf target at the same virtual-time budget — a miniature of the
// paper's Table I.
//
//	go run ./examples/coverage
package main

import (
	"fmt"
	"log"
	"math/rand"

	ipbse "pbse/internal/pbse"
	"pbse/internal/symex"
	"pbse/internal/targets"
)

const budget = 600_000

func main() {
	tgt, err := targets.ByDriver("readelf")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("readelf analogue, %d-instruction budget, 100-byte symbolic file\n\n", budget)
	fmt.Printf("%-14s %s\n", "searcher", "basic blocks covered")
	for _, kind := range symex.AllSearcherKinds {
		prog, err := tgt.Build()
		if err != nil {
			log.Fatal(err)
		}
		ex := symex.NewExecutor(prog, symex.Options{InputSize: 100})
		s, err := symex.NewSearcher(kind, ex, rand.New(rand.NewSource(1)))
		if err != nil {
			log.Fatal(err)
		}
		s.Add(ex.NewEntryState())
		(&symex.Runner{Ex: ex, Search: s}).Run(budget)
		fmt.Printf("%-14s %d\n", kind, ex.NumCovered())
	}

	// pbSE with a generated seed (paper: seed sizes 576 and 7981)
	prog, _ := tgt.Build()
	seed := tgt.GenSeed(rand.New(rand.NewSource(42)), 576)
	res, err := ipbse.Run(prog, seed, ipbse.Options{Budget: budget},
		symex.Options{InputSize: len(seed)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %d   (c-time %d, p-time %v, %d phases, %d trap)\n",
		"pbSE", res.Covered, res.CTime, res.PTime,
		len(res.Division.Phases), res.Division.NumTrap)
}
