// Findbugs: pit pbSE against KLEE's default searcher on the tiff2rgba
// target and report which seeded bugs each finds within the same budget —
// a miniature of the paper's Table III experiment and the Fig 5 case
// study (the CIELab out-of-bounds read hides in a deep phase that plain
// symbolic execution rarely reaches).
//
//	go run ./examples/findbugs
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pbse/internal/interp"
	ipbse "pbse/internal/pbse"
	"pbse/internal/symex"
	"pbse/internal/targets"
)

const budget = 1_500_000

func main() {
	tgt, err := targets.ByDriver("tiff2rgba")
	if err != nil {
		log.Fatal(err)
	}
	seed := tgt.GenSeed(rand.New(rand.NewSource(42)), 243) // paper's s-size for tiff2rgba

	// pbSE
	progA, err := tgt.Build()
	if err != nil {
		log.Fatal(err)
	}
	pres, err := ipbse.Run(progA, seed, ipbse.Options{Budget: budget},
		symex.Options{InputSize: len(seed)})
	if err != nil {
		log.Fatal(err)
	}

	// KLEE default from scratch
	progB, _ := tgt.Build()
	ex := symex.NewExecutor(progB, symex.Options{InputSize: len(seed)})
	s, _ := symex.NewSearcher(symex.SearchDefault, ex, rand.New(rand.NewSource(1)))
	s.Add(ex.NewEntryState())
	(&symex.Runner{Ex: ex, Search: s}).Run(budget)

	fmt.Printf("target %s (%s), seed %d bytes, budget %d instructions\n\n",
		tgt.Driver, tgt.Paper, len(seed), budget)
	fmt.Printf("%-14s %-10s %-6s\n", "engine", "coverage", "bugs")
	fmt.Printf("%-14s %-10d %-6d\n", "pbSE", pres.Covered, len(pres.Bugs))
	fmt.Printf("%-14s %-10d %-6d\n\n", "KLEE default", ex.NumCovered(), ex.Bugs.Len())

	fmt.Printf("pbSE identified %d phases (%d trap)\n", len(pres.Division.Phases), pres.Division.NumTrap)
	for _, b := range pres.Bugs {
		fmt.Printf("  [phase %d] %s\n", b.Phase, b)
		if b.Input != nil {
			r := interp.New(progA, b.Input, interp.Options{}).Run()
			status := "did NOT reproduce"
			if r.Reason == interp.StopFault {
				status = "reproduces: " + r.Fault.Error()
			}
			fmt.Printf("    witness %s\n", status)
		}
	}
	if len(pres.Bugs) > ex.Bugs.Len() {
		fmt.Println("\npbSE found bugs the baseline missed — the paper's Fig 5 effect.")
	}
}
