// Quickstart: build a tiny program with the IR builder, run symbolic
// execution on it, and reproduce the bug it finds with the concrete
// interpreter.
//
// The program mirrors the paper's Fig 6 shape: two 16-bit fields are read
// from the file, multiplied, and used to index a fixed-size buffer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pbse/internal/interp"
	"pbse/internal/ir"
	"pbse/internal/symex"
)

func main() {
	prog, err := buildProgram()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("program under test:")
	fmt.Println(prog.Print())

	// symbolic execution with the default (KLEE-style) searcher
	ex := symex.NewExecutor(prog, symex.Options{InputSize: 8})
	s, err := symex.NewSearcher(symex.SearchDefault, ex, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	s.Add(ex.NewEntryState())
	(&symex.Runner{Ex: ex, Search: s}).Run(100_000)

	fmt.Printf("covered %d/%d basic blocks\n\n", ex.NumCovered(), len(prog.AllBlocks))
	for _, bug := range ex.Bugs.Reports() {
		fmt.Println("found:", bug)
		fmt.Printf("witness input: % x\n", bug.Input)

		// replay the witness concretely: it must crash
		res := interp.New(prog, bug.Input, interp.Options{}).Run()
		if res.Reason == interp.StopFault {
			fmt.Println("witness reproduces concretely:", res.Fault)
		} else {
			fmt.Println("witness did NOT reproduce — this would be an engine bug")
		}
	}
}

// buildProgram constructs: w = in[0..1]; h = in[2..3]; buf = byte[257];
// read buf[w*h*3] — out of bounds whenever w*h*3 > 256.
func buildProgram() (*ir.Program, error) {
	p := ir.NewProgram("quickstart")
	fb := p.NewFunc("main", 0)
	b := fb.NewBlock("entry")

	in := b.Input()
	w := b.Load(in, 0, 16)
	h := b.Load(in, 2, 16)
	w32 := b.Zext(w, 32)
	h32 := b.Zext(h, 32)
	area := b.Mul(w32, h32, 32)
	idx := b.BinImm(ir.Mul, area, 3, 32)

	buf := b.Alloca(257)
	idx64 := b.Zext(idx, 64)
	addr := b.Add(buf, idx64, 64)
	b.Load(addr, 0, 8)
	b.Exit()

	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}
