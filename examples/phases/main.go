// Phases: run concolic execution on the gif2tiff target, divide the
// execution into phases with and without the coverage element, and show
// the trap phases each finds — the paper's Fig 4 experiment as a program.
//
//	go run ./examples/phases
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pbse/internal/concolic"
	"pbse/internal/phase"
	"pbse/internal/symex"
	"pbse/internal/targets"
	"pbse/internal/trace"
)

func main() {
	tgt, err := targets.ByDriver("gif2tiff")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := tgt.Build()
	if err != nil {
		log.Fatal(err)
	}
	seed := tgt.GenSeed(rand.New(rand.NewSource(7)), 407) // paper's s-size for gif2tiff

	ex := symex.NewExecutor(prog, symex.Options{InputSize: len(seed)})
	con, err := concolic.Run(ex, seed, concolic.Options{Interval: 256, RecordTrace: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("concolic run: %d instructions, %d BBVs, %d seedStates, exited=%v\n\n",
		con.Steps, len(con.BBVs), len(con.SeedStates), con.Exited)

	ix := trace.NewIndexer()
	fmt.Println("basic-block distribution of the seed path (Fig 5(a) style):")
	fmt.Print(trace.ScatterASCII(ix.Series(con.Trace), 14, 72))

	woOpts := phase.DefaultOptions()
	woOpts.IncludeCoverage = false
	without := phase.Divide(con.BBVs, woOpts)
	with := phase.Divide(con.BBVs, phase.DefaultOptions())

	fmt.Println("\nphase division, one character per BBV (letters mark trap phases):")
	fmt.Printf("BBV only      (k=%d): %s", without.K,
		trace.PhaseBandsASCII(without.Assign, func(p int) bool { return without.Phases[p].Trap }))
	fmt.Printf("BBV+coverage  (k=%d): %s", with.K,
		trace.PhaseBandsASCII(with.Assign, func(p int) bool { return with.Phases[p].Trap }))
	fmt.Printf("\ntrap phases: %d without the coverage element, %d with it\n",
		without.NumTrap, with.NumTrap)
	if with.NumTrap >= without.NumTrap {
		fmt.Println("the coverage element separates phases the plain BBVs merge — Fig 4's point.")
	}

	fmt.Println("\nper-phase detail (BBV+coverage):")
	for _, ph := range with.Phases {
		mark := " "
		if ph.Trap {
			mark = "T"
		}
		fmt.Printf("  phase %d %s: %d BBVs, first at t=%d, longest run %d\n",
			ph.ID, mark, len(ph.BBVs), ph.FirstTime, ph.LongestRun)
	}
}
