// Differential oracle: the concrete interpreter (internal/interp) and a
// concolic replay by the symbolic executor (internal/symex) must agree on
// the block-entry trace and the final memory image for any input. The
// inputs exercised are seed inputs plus solver models extracted from
// symbolic exploration — exactly the inputs the parallel scheduler's
// workers produce — so a divergence here catches parallel-merge bugs,
// importer bugs, and unsound concretizations.
package pbse

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pbse/internal/interp"
	"pbse/internal/ir"
	"pbse/internal/solver"
	"pbse/internal/symex"
	"pbse/internal/targets"
)

// concreteRun executes prog on input with the reference interpreter.
func concreteRun(t *testing.T, prog *ir.Program, input []byte) (trace []int, objs [][]byte, res interp.Result) {
	t.Helper()
	in := make([]byte, len(input))
	copy(in, input)
	m := interp.New(prog, in, interp.Options{
		MaxSteps: 2_000_000,
		Tracer:   func(b *ir.Block, _ int64) { trace = append(trace, b.ID) },
	})
	res = m.Run()
	if res.Reason == interp.StopSteps {
		t.Fatalf("interp: step budget exhausted")
	}
	return trace, m.Objects(), res
}

// symbolicReplay drives the symbolic executor in concolic mode along
// input's path and snapshots the final state's memory under the shadow
// assignment.
func symbolicReplay(t *testing.T, prog *ir.Program, input []byte) (trace []int, objs map[uint32][]byte, reason symex.TermReason) {
	t.Helper()
	ex := symex.NewExecutor(prog, symex.Options{InputSize: len(input)})
	ex.EnableConcolic(input, nil)
	st := ex.NewEntryState()
	ex.BlockHook = func(s *symex.State, b *ir.Block, _ int64) {
		if s == st {
			trace = append(trace, b.ID)
		}
	}
	for i := 0; ; i++ {
		if i > 1_000_000 {
			t.Fatalf("symex replay: step budget exhausted")
		}
		r := ex.StepBlock(st)
		if r.Terminated {
			reason = r.Reason
			break
		}
	}
	return trace, ex.ConcreteObjects(st, ex.ShadowAssignment()), reason
}

// assertSameRun compares one concrete run against one symbolic replay of
// the same input.
func assertSameRun(t *testing.T, prog *ir.Program, input []byte, label string) {
	t.Helper()
	ctrace, cobjs, cres := concreteRun(t, prog, input)
	strace, sobjs, sreason := symbolicReplay(t, prog, input)

	wantFault := cres.Reason == interp.StopFault
	gotFault := sreason != symex.TermExit
	if wantFault != gotFault {
		t.Fatalf("%s: termination mismatch: interp=%v symex reason=%d", label, cres.Reason, sreason)
	}
	if len(ctrace) != len(strace) {
		t.Fatalf("%s: trace length mismatch: interp=%d symex=%d", label, len(ctrace), len(strace))
	}
	for i := range ctrace {
		if ctrace[i] != strace[i] {
			t.Fatalf("%s: trace diverges at entry %d: interp bb%d symex bb%d", label, i, ctrace[i], strace[i])
		}
	}
	for id := 1; id < len(cobjs); id++ {
		if cobjs[id] == nil {
			continue
		}
		sb, ok := sobjs[uint32(id)]
		if !ok {
			t.Fatalf("%s: object %d present in interp, missing in symex", label, id)
		}
		if !bytes.Equal(cobjs[id], sb) {
			t.Fatalf("%s: final memory of object %d differs:\n interp: % x\n symex:  % x", label, id, cobjs[id], sb)
		}
	}
}

// exploreModels runs plain symbolic execution (BFS) and returns solver
// models of the first few cleanly exited paths — fresh inputs that drive
// execution down paths the seed never took.
func exploreModels(t *testing.T, prog *ir.Program, inputSize, maxModels int) [][]byte {
	t.Helper()
	ex := symex.NewExecutor(prog, symex.Options{InputSize: inputSize, MaxStates: 64})
	queue := []*symex.State{ex.NewEntryState()}
	var models [][]byte
	for steps := 0; len(queue) > 0 && len(models) < maxModels && steps < 50_000; steps++ {
		st := queue[0]
		queue = queue[1:]
		if st.Terminated() {
			continue
		}
		r := ex.StepBlock(st)
		queue = append(queue, r.Added...)
		if !r.Terminated {
			queue = append(queue, st)
			continue
		}
		if r.Reason != symex.TermExit {
			continue
		}
		verdict, m, _ := ex.Solver.Check(st.PathConstraints(), nil)
		if verdict != solver.Sat {
			continue
		}
		input := make([]byte, inputSize)
		copy(input, m[ex.InputArr])
		models = append(models, input)
	}
	return models
}

func exampleIRPrograms(t *testing.T) map[string]*ir.Program {
	t.Helper()
	dir := filepath.Join("examples", "ir")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	out := make(map[string]*ir.Program)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ir") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		prog, err := ir.Parse(string(src))
		if err != nil {
			t.Fatalf("parsing %s: %v", e.Name(), err)
		}
		out[strings.TrimSuffix(e.Name(), ".ir")] = prog
	}
	if len(out) == 0 {
		t.Fatal("no example programs found")
	}
	return out
}

// TestDifferentialExamples cross-checks interp and symex on every
// examples/ir program: a deterministic pseudo-random seed input plus
// solver models of symbolically explored exit paths.
func TestDifferentialExamples(t *testing.T) {
	const inputSize = 24
	for name, prog := range exampleIRPrograms(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			seed := make([]byte, inputSize)
			rng.Read(seed)
			assertSameRun(t, prog, seed, name+"/seed")

			for _, m := range exploreModels(t, prog, inputSize, 6) {
				assertSameRun(t, prog, m, name+"/model")
			}
		})
	}
}

// TestDifferentialTargets cross-checks interp and symex on the generated
// target corpus: the generated seed, the buggy seed where available, and
// solver models of the seed path's fork points (the seedStates the
// parallel scheduler distributes to its workers).
func TestDifferentialTargets(t *testing.T) {
	for _, tgt := range targets.All() {
		t.Run(tgt.Name, func(t *testing.T) {
			prog, err := tgt.Build()
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			seed := tgt.GenSeed(rng, 96)
			assertSameRun(t, prog, seed, tgt.Name+"/seed")
			if tgt.GenBuggySeed != nil {
				assertSameRun(t, prog, tgt.GenBuggySeed(rng), tgt.Name+"/buggy-seed")
			}

			// Models of seed-path fork points: run the seed concolically,
			// then solve the path constraints of recorded seedStates.
			ex := symex.NewExecutor(prog, symex.Options{InputSize: len(seed)})
			var seeds []*symex.State
			ex.EnableConcolic(seed, func(s *symex.State) { seeds = append(seeds, s) })
			st := ex.NewEntryState()
			for i := 0; i < 200_000; i++ {
				if r := ex.StepBlock(st); r.Terminated {
					break
				}
			}
			ex.DisableConcolic()
			tried := 0
			for _, s := range seeds {
				if tried >= 4 {
					break
				}
				verdict, m, _ := ex.Solver.Check(s.PathConstraints(), nil)
				if verdict != solver.Sat {
					continue
				}
				tried++
				input := make([]byte, len(seed))
				copy(input, m[ex.InputArr])
				assertSameRun(t, prog, input, tgt.Name+"/fork-model")
			}
		})
	}
}
