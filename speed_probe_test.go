package pbse

import (
	"fmt"
	"testing"
	"time"
)

func TestSpeedProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("speed probe runs every driver at a 300k budget")
	}
	for _, driver := range []string{"readelf", "pngtest", "gif2tiff", "tiff2rgba", "dwarfdump"} {
		tgt, _ := TargetByDriver(driver)
		prog, _ := tgt.Build()
		start := time.Now()
		r, err := RunBaseline(prog, SearchDefault, 100, 300_000, 1)
		if err != nil {
			t.Fatal(err)
		}
		el := time.Since(start)
		fmt.Printf("%-10s blocks=%-4d covered=%-4d wall=%-14v (%.0f instr/ms)\n",
			driver, len(prog.AllBlocks), r.Covered, el.Round(time.Millisecond), float64(r.Clock)/float64(el.Milliseconds()+1))
	}
}
